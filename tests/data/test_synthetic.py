"""Synthetic dataset generator tests: determinism, statistics, scaling."""

import numpy as np
import pytest

from repro.data import (DATASET_NAMES, PAPER_SPECS, DatasetSpec, generate_log,
                        generate_sparse_log,
                        load_dataset, scaled_spec)


class TestScaledSpec:
    def test_paper_scale_preserves_counts(self):
        spec = PAPER_SPECS["steam"]
        scaled = scaled_spec(spec, 1.0)
        assert scaled.num_users == spec.num_users
        assert scaled.num_items == spec.num_items

    def test_shrinks_proportionally(self):
        spec = PAPER_SPECS["phone"]
        scaled = scaled_spec(spec, 0.1)
        assert scaled.num_users == pytest.approx(spec.num_users * 0.1, rel=0.05)
        assert scaled.num_items == pytest.approx(spec.num_items * 0.1, rel=0.05)

    def test_floors_apply(self):
        spec = PAPER_SPECS["steam"]
        scaled = scaled_spec(spec, 1e-6)
        assert scaled.num_users >= 30
        assert scaled.num_items >= 40
        assert scaled.num_samples >= scaled.num_users * 3

    def test_density_cap(self):
        # MovieLens at tiny scale would otherwise exceed items/2 per user.
        spec = PAPER_SPECS["movielens"]
        scaled = scaled_spec(spec, 0.02)
        assert scaled.num_samples / scaled.num_users <= scaled.num_items / 2 + 1

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(PAPER_SPECS["steam"], 0.0)


class TestGenerateLog:
    SPEC = DatasetSpec(name="g", num_users=50, num_items=80, num_samples=600,
                       num_clusters=6)

    def test_deterministic(self):
        a = generate_log(self.SPEC, seed=3)
        b = generate_log(self.SPEC, seed=3)
        assert a.num_interactions == b.num_interactions
        for user in a.users:
            assert a.sequence(user) == b.sequence(user)

    def test_different_seeds_differ(self):
        a = generate_log(self.SPEC, seed=1)
        b = generate_log(self.SPEC, seed=2)
        assert any(a.sequence(u) != b.sequence(u) for u in a.users)

    def test_every_user_has_min_length(self):
        log = generate_log(self.SPEC, seed=0)
        assert all(len(log.sequence(u)) >= self.SPEC.min_sequence_length
                   for u in log.users)

    def test_sample_count_near_target(self):
        log = generate_log(self.SPEC, seed=0)
        assert log.num_interactions == pytest.approx(self.SPEC.num_samples,
                                                     rel=0.5)

    def test_popularity_is_skewed(self):
        log = generate_log(self.SPEC, seed=0)
        counts = np.sort(log.item_counts())[::-1]
        top_share = counts[:8].sum() / counts.sum()
        assert top_share > 2 * (8 / self.SPEC.num_items)


class TestLoadDataset:
    def test_all_names_load(self):
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale="ci", seed=0)
            assert ds.num_users > 0
            assert ds.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("netflix")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("steam", scale="giant")

    def test_float_scale_accepted(self):
        ds = load_dataset("steam", scale=0.01, seed=0)
        assert ds.num_users >= 30

    def test_deterministic_by_seed(self):
        a = load_dataset("steam", scale="ci", seed=5)
        b = load_dataset("steam", scale="ci", seed=5)
        assert a.test == b.test

    def test_movielens_denser_than_steam(self):
        steam = load_dataset("steam", scale="ci", seed=0)
        ml = load_dataset("movielens", scale="ci", seed=0)
        steam_freq = (steam.train.num_interactions / steam.num_items)
        ml_freq = ml.train.num_interactions / ml.num_items
        assert ml_freq > 2 * steam_freq


class TestGenerateSparseLog:
    """The vectorized array-substrate generator (the `scale` knob)."""

    SPEC = DatasetSpec(name="tiny", num_users=200, num_items=120,
                       num_samples=2400, num_clusters=6)

    def test_returns_valid_substrate(self):
        view = generate_sparse_log(self.SPEC, seed=0)
        assert view.num_users == self.SPEC.num_users
        assert view.user_ptr[0] == 0
        assert view.user_ptr[-1] == view.num_interactions
        assert view.item_ids.min() >= 0
        assert view.item_ids.max() < self.SPEC.num_items

    def test_deterministic(self):
        a = generate_sparse_log(self.SPEC, seed=3)
        b = generate_sparse_log(self.SPEC, seed=3)
        assert np.array_equal(a.item_ids, b.item_ids)
        assert np.array_equal(a.user_ptr, b.user_ptr)

    def test_different_seeds_differ(self):
        a = generate_sparse_log(self.SPEC, seed=1)
        b = generate_sparse_log(self.SPEC, seed=2)
        assert not (a.num_interactions == b.num_interactions
                    and np.array_equal(a.item_ids, b.item_ids))

    def test_min_lengths_hold(self):
        view = generate_sparse_log(self.SPEC, seed=0)
        assert view.lengths.min() >= self.SPEC.min_sequence_length

    def test_num_users_knob_rescales(self):
        view = generate_sparse_log("steam", seed=0, num_users=500)
        assert view.num_users == pytest.approx(500, rel=0.05)
        # Mean length follows the rescaled spec (scaled_spec shrinks
        # samples superlinearly below paper scale).
        spec = PAPER_SPECS["steam"]
        scaled = scaled_spec(spec, 500 / spec.num_users)
        assert (view.num_interactions / view.num_users
                == pytest.approx(scaled.mean_sequence_length(), rel=0.3))

    def test_popularity_is_skewed(self):
        view = generate_sparse_log(self.SPEC, seed=0)
        counts = np.sort(view.item_counts())[::-1]
        top_share = counts[:8].sum() / counts.sum()
        assert top_share > 2 * (8 / self.SPEC.num_items)

    def test_no_immediate_repeats_dominate(self):
        # The serial generator redraws immediate repeats; the vectorized
        # one does a single redraw pass, so repeats must be rare.
        view = generate_sparse_log(self.SPEC, seed=0)
        prev, nxt = view.consecutive_pairs()
        assert (prev == nxt).mean() < 0.05

    def test_statistics_match_serial_generator(self):
        """Distribution-matched to generate_log: same spec, comparable
        popularity skew and length profile (not bit-identical)."""
        serial = generate_log(self.SPEC, seed=0)
        fast = generate_sparse_log(self.SPEC, seed=0)
        assert fast.num_interactions == pytest.approx(
            serial.num_interactions, rel=0.3)
        s_counts = np.sort(serial.item_counts())[::-1].astype(float)
        f_counts = np.sort(fast.item_counts())[::-1].astype(float)
        s_top = s_counts[:10].sum() / s_counts.sum()
        f_top = f_counts[:10].sum() / f_counts.sum()
        assert f_top == pytest.approx(s_top, rel=0.5)
