"""Synthetic dataset generator tests: determinism, statistics, scaling."""

import numpy as np
import pytest

from repro.data import (DATASET_NAMES, PAPER_SPECS, DatasetSpec, generate_log,
                        load_dataset, scaled_spec)


class TestScaledSpec:
    def test_paper_scale_preserves_counts(self):
        spec = PAPER_SPECS["steam"]
        scaled = scaled_spec(spec, 1.0)
        assert scaled.num_users == spec.num_users
        assert scaled.num_items == spec.num_items

    def test_shrinks_proportionally(self):
        spec = PAPER_SPECS["phone"]
        scaled = scaled_spec(spec, 0.1)
        assert scaled.num_users == pytest.approx(spec.num_users * 0.1, rel=0.05)
        assert scaled.num_items == pytest.approx(spec.num_items * 0.1, rel=0.05)

    def test_floors_apply(self):
        spec = PAPER_SPECS["steam"]
        scaled = scaled_spec(spec, 1e-6)
        assert scaled.num_users >= 30
        assert scaled.num_items >= 40
        assert scaled.num_samples >= scaled.num_users * 3

    def test_density_cap(self):
        # MovieLens at tiny scale would otherwise exceed items/2 per user.
        spec = PAPER_SPECS["movielens"]
        scaled = scaled_spec(spec, 0.02)
        assert scaled.num_samples / scaled.num_users <= scaled.num_items / 2 + 1

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            scaled_spec(PAPER_SPECS["steam"], 0.0)


class TestGenerateLog:
    SPEC = DatasetSpec(name="g", num_users=50, num_items=80, num_samples=600,
                       num_clusters=6)

    def test_deterministic(self):
        a = generate_log(self.SPEC, seed=3)
        b = generate_log(self.SPEC, seed=3)
        assert a.num_interactions == b.num_interactions
        for user in a.users:
            assert a.sequence(user) == b.sequence(user)

    def test_different_seeds_differ(self):
        a = generate_log(self.SPEC, seed=1)
        b = generate_log(self.SPEC, seed=2)
        assert any(a.sequence(u) != b.sequence(u) for u in a.users)

    def test_every_user_has_min_length(self):
        log = generate_log(self.SPEC, seed=0)
        assert all(len(log.sequence(u)) >= self.SPEC.min_sequence_length
                   for u in log.users)

    def test_sample_count_near_target(self):
        log = generate_log(self.SPEC, seed=0)
        assert log.num_interactions == pytest.approx(self.SPEC.num_samples,
                                                     rel=0.5)

    def test_popularity_is_skewed(self):
        log = generate_log(self.SPEC, seed=0)
        counts = np.sort(log.item_counts())[::-1]
        top_share = counts[:8].sum() / counts.sum()
        assert top_share > 2 * (8 / self.SPEC.num_items)


class TestLoadDataset:
    def test_all_names_load(self):
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale="ci", seed=0)
            assert ds.num_users > 0
            assert ds.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("netflix")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("steam", scale="giant")

    def test_float_scale_accepted(self):
        ds = load_dataset("steam", scale=0.01, seed=0)
        assert ds.num_users >= 30

    def test_deterministic_by_seed(self):
        a = load_dataset("steam", scale="ci", seed=5)
        b = load_dataset("steam", scale="ci", seed=5)
        assert a.test == b.test

    def test_movielens_denser_than_steam(self):
        steam = load_dataset("steam", scale="ci", seed=0)
        ml = load_dataset("movielens", scale="ci", seed=0)
        steam_freq = (steam.train.num_interactions / steam.num_items)
        ml_freq = ml.train.num_interactions / ml.num_items
        assert ml_freq > 2 * steam_freq
