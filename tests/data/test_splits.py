"""Leave-one-out split tests."""

from repro.data import InteractionLog, leave_one_out_split


def build_log(sequences):
    num_items = max(max(s) for s in sequences.values()) + 1
    log = InteractionLog(num_items)
    for user, seq in sequences.items():
        log.add_sequence(user, seq)
    return log


class TestLeaveOneOut:
    def test_last_two_held_out(self):
        log = build_log({0: [1, 2, 3, 4]})
        ds = leave_one_out_split("t", log)
        assert ds.train.sequence(0) == [1, 2]
        assert ds.validation[0] == 3
        assert ds.test[0] == 4

    def test_short_users_dropped(self):
        log = build_log({0: [1, 2], 1: [1, 2, 3]})
        ds = leave_one_out_split("t", log)
        assert 0 not in ds.train
        assert 1 in ds.train

    def test_min_behaviors_boundary(self):
        log = build_log({0: [1, 2, 3]})
        ds = leave_one_out_split("t", log, min_behaviors=3)
        assert ds.train.sequence(0) == [1]
        assert ds.validation[0] == 2
        assert ds.test[0] == 3

    def test_no_interaction_lost_or_duplicated(self):
        log = build_log({u: list(range(1, 4 + u)) for u in range(5)})
        ds = leave_one_out_split("t", log)
        total = (ds.train.num_interactions + len(ds.validation)
                 + len(ds.test))
        assert total == log.num_interactions

    def test_item_universe_preserved(self):
        log = build_log({0: [9, 1, 2]})
        ds = leave_one_out_split("t", log)
        assert ds.train.num_items == log.num_items
