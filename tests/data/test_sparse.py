"""Sparse CSR substrate tests: row-API equivalence, caching, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (DatasetSpec, InteractionLog, SparseInteractions,
                        as_sparse, generate_log, sparse_view)

SPEC = DatasetSpec(name="tiny", num_users=30, num_items=50, num_samples=300,
                   num_clusters=4)


def make_log(seed: int = 0) -> InteractionLog:
    return generate_log(SPEC, seed=seed)


def assert_view_matches_log(view: SparseInteractions,
                            log: InteractionLog) -> None:
    """The CSR snapshot agrees with the row-object API on every read."""
    assert view.num_users == log.num_users
    assert view.num_interactions == log.num_interactions
    assert view.users.tolist() == log.users
    for user in log.users:
        assert view.sequence(user) == log.sequence(user)
        assert user in view
    assert dict(view.iter_sequences()) == dict(log.iter_sequences())
    expected_pairs = sorted(
        (u, i) for u, seq in log.iter_sequences() for i in seq)
    assert sorted(map(tuple, view.pairs().tolist())) == expected_pairs
    counts = np.zeros(log.num_items, dtype=np.int64)
    for _, seq in log.iter_sequences():
        for item in seq:
            counts[item] += 1
    assert np.array_equal(view.item_counts(), counts)


class TestFromLog:
    def test_matches_row_api(self):
        log = make_log()
        assert_view_matches_log(SparseInteractions.from_log(log), log)

    def test_csr_slices_are_sequences(self):
        log = make_log()
        view = SparseInteractions.from_log(log)
        for i, user in enumerate(view.users):
            row = view.item_ids[view.user_ptr[i]:view.user_ptr[i + 1]]
            assert row.tolist() == log.sequence(int(user))

    def test_empty_log(self):
        view = SparseInteractions.from_log(InteractionLog(10))
        assert view.num_users == 0
        assert view.num_interactions == 0
        assert view.pairs().shape == (0, 2)
        assert view.item_counts().tolist() == [0] * 10

    def test_lengths_align_with_users(self):
        log = make_log()
        view = SparseInteractions.from_log(log)
        assert view.lengths.tolist() == [len(log.sequence(int(u)))
                                         for u in view.users]


class TestBulkReads:
    def test_consecutive_pairs_match_serial(self):
        log = make_log()
        view = sparse_view(log)
        expected = [(seq[i], seq[i + 1]) for _, seq in log.iter_sequences()
                    for i in range(len(seq) - 1)]
        prev, nxt = view.consecutive_pairs()
        assert sorted(zip(prev.tolist(), nxt.tolist())) == sorted(expected)

    def test_last_n_windows(self):
        log = make_log()
        view = sparse_view(log)
        windows, mask = view.last_n(4, pad=-1)
        assert windows.shape == (view.num_users, 4)
        for i, user in enumerate(view.users):
            tail = log.sequence(int(user))[-4:]
            padded = [-1] * (4 - len(tail)) + tail
            assert windows[i].tolist() == padded
            assert mask[i].tolist() == [False] * (4 - len(tail)) + \
                [True] * len(tail)

    def test_last_n_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sparse_view(make_log()).last_n(0)

    def test_sorted_pair_keys_membership(self):
        log = make_log()
        view = sparse_view(log)
        keys = view.sorted_pair_keys()
        assert np.all(np.diff(keys) >= 0)
        clicked = {(u, i) for u, seq in log.iter_sequences() for i in seq}
        for user in log.users:
            for item in (0, 7, 23, 49):
                key = user * log.num_items + item
                pos = np.searchsorted(keys, key)
                found = pos < keys.size and keys[pos] == key
                assert found == ((user, item) in clicked)

    def test_implicit_dense_matches_row_build(self):
        log = make_log()
        dense = sparse_view(log).to_implicit_dense()
        expected = np.zeros_like(dense)
        for user, seq in log.iter_sequences():
            expected[user, seq] = 1.0
        assert np.array_equal(dense, expected)

    def test_implicit_csr_equals_dense(self):
        log = make_log()
        view = sparse_view(log)
        assert np.array_equal(view.to_implicit_csr().toarray(),
                              view.to_implicit_dense())

    def test_implicit_matrix_user_cap(self):
        log = make_log()
        view = sparse_view(log)
        capped = view.to_implicit_dense(num_users=5)
        assert capped.shape == (5, log.num_items)
        assert np.array_equal(capped, view.to_implicit_dense()[:5])
        assert np.array_equal(view.to_implicit_csr(num_users=5).toarray(),
                              capped)


class TestCache:
    def test_view_is_reused_until_mutation(self):
        log = make_log()
        assert sparse_view(log) is sparse_view(log)

    def test_mutators_invalidate(self):
        log = make_log()
        before = sparse_view(log)
        log.add(0, 3)
        after = sparse_view(log)
        assert after is not before
        assert after.num_interactions == before.num_interactions + 1

    def test_splice_and_unsplice_invalidate(self):
        log = make_log()
        poison = InteractionLog(log.num_items)
        poison.add_sequence(10_000, [1, 2, 3])
        v0 = sparse_view(log)
        log.splice(poison)
        v1 = sparse_view(log)
        assert v1 is not v0 and 10_000 in v1
        log.unsplice(poison)
        v2 = sparse_view(log)
        assert v2 is not v1 and 10_000 not in v2
        assert_view_matches_log(v2, log)

    def test_views_are_frozen_snapshots(self):
        log = make_log()
        before = sparse_view(log)
        nnz = before.num_interactions
        log.add(0, 1)
        assert before.num_interactions == nnz  # old snapshot untouched

    def test_version_counter_bumps(self):
        log = InteractionLog(10)
        v = log._version
        log.add(0, 1)
        assert log._version == v + 1
        log.add_sequence(1, [2, 3])
        assert log._version > v + 1

    def test_log_delegations_use_view(self):
        log = make_log()
        view = sparse_view(log)
        assert np.array_equal(log.pairs(), view.pairs())
        assert np.array_equal(log.item_counts(), view.item_counts())
        assert np.array_equal(log.to_implicit_matrix(),
                              view.to_implicit_dense())

    def test_as_sparse_passthrough(self):
        log = make_log()
        view = sparse_view(log)
        assert as_sparse(view) is view
        assert as_sparse(log) is view


class TestFromArrays:
    def test_roundtrip(self):
        log = make_log()
        ref = SparseInteractions.from_log(log)
        view = SparseInteractions.from_arrays(log.num_items, ref.users,
                                              ref.user_ptr, ref.item_ids)
        assert_view_matches_log(view, log)

    @pytest.mark.parametrize("mutation", [
        "bad_ptr_len", "ptr_not_zero", "ptr_wrong_end", "ptr_decreasing",
        "users_unsorted", "users_negative", "item_out_of_range", "not_1d",
    ])
    def test_validation_rejects(self, mutation):
        users = np.array([0, 1, 2])
        ptr = np.array([0, 2, 3, 5])
        items = np.array([1, 2, 0, 3, 1])
        kwargs = dict(num_items=5, users=users, user_ptr=ptr, item_ids=items)
        if mutation == "bad_ptr_len":
            kwargs["user_ptr"] = ptr[:-1]
        elif mutation == "ptr_not_zero":
            kwargs["user_ptr"] = np.array([1, 2, 3, 5])
        elif mutation == "ptr_wrong_end":
            kwargs["user_ptr"] = np.array([0, 2, 3, 6])
        elif mutation == "ptr_decreasing":
            kwargs["user_ptr"] = np.array([0, 3, 2, 5])
        elif mutation == "users_unsorted":
            kwargs["users"] = np.array([0, 2, 1])
        elif mutation == "users_negative":
            kwargs["users"] = np.array([-1, 1, 2])
        elif mutation == "item_out_of_range":
            kwargs["item_ids"] = np.array([1, 2, 0, 5, 1])
        elif mutation == "not_1d":
            kwargs["item_ids"] = items.reshape(1, -1)
        with pytest.raises(ValueError):
            SparseInteractions.from_arrays(**kwargs)


class TestPropertyInterleavings:
    """Views agree with the row API after arbitrary mutation interleavings."""

    def test_random_add_splice_unsplice(self):
        rng = np.random.default_rng(42)
        log = make_log(seed=1)
        active: list[InteractionLog] = []
        next_user = 50_000
        for step in range(120):
            op = rng.integers(0, 3)
            if op == 0:
                # Mutate base users only: spliced sequences are shared by
                # reference and must stay frozen while attached.
                base_users = [u for u in log.users if u < 50_000]
                log.add(int(rng.choice(base_users)),
                        int(rng.integers(0, log.num_items)))
            elif op == 1:
                poison = InteractionLog(log.num_items)
                for _ in range(int(rng.integers(1, 4))):
                    poison.add_sequence(
                        next_user,
                        rng.integers(0, log.num_items,
                                     size=int(rng.integers(1, 6))).tolist())
                    next_user += 1
                log.splice(poison)
                active.append(poison)
            elif op == 2 and active:
                log.unsplice(active.pop(int(rng.integers(0, len(active)))))
            if step % 10 == 0:
                assert_view_matches_log(sparse_view(log), log)
        for poison in active:
            log.unsplice(poison)
        assert_view_matches_log(sparse_view(log), log)
