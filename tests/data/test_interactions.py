"""InteractionLog and Dataset container tests."""

import numpy as np
import pytest

from repro.data import Dataset, InteractionLog


class TestInteractionLog:
    def test_requires_positive_universe(self):
        with pytest.raises(ValueError):
            InteractionLog(0)

    def test_add_and_sequence(self):
        log = InteractionLog(5)
        log.add(0, 1)
        log.add(0, 2)
        log.add(3, 4)
        assert log.sequence(0) == [1, 2]
        assert log.sequence(3) == [4]
        assert log.sequence(99) == []
        assert log.num_users == 2
        assert log.num_interactions == 3

    def test_rejects_out_of_universe_items(self):
        log = InteractionLog(3)
        with pytest.raises(ValueError):
            log.add(0, 3)
        with pytest.raises(ValueError):
            log.add(0, -1)

    def test_sequence_returns_copy(self):
        log = InteractionLog(5)
        log.add_sequence(0, [1, 2])
        seq = log.sequence(0)
        seq.append(4)
        assert log.sequence(0) == [1, 2]

    def test_copy_is_independent(self):
        log = InteractionLog(5)
        log.add_sequence(0, [1])
        clone = log.copy()
        clone.add(0, 2)
        assert log.sequence(0) == [1]
        assert clone.sequence(0) == [1, 2]

    def test_merged_with_appends_shared_users(self):
        a = InteractionLog(5)
        a.add_sequence(0, [1, 2])
        b = InteractionLog(5)
        b.add_sequence(0, [3])
        b.add_sequence(7, [4])
        merged = a.merged_with(b)
        assert merged.sequence(0) == [1, 2, 3]
        assert merged.sequence(7) == [4]
        # Originals untouched.
        assert a.sequence(0) == [1, 2]
        assert 7 not in a

    def test_merge_rejects_mismatched_universe(self):
        with pytest.raises(ValueError):
            InteractionLog(5).merged_with(InteractionLog(6))

    def test_item_counts(self):
        log = InteractionLog(4)
        log.add_sequence(0, [1, 1, 3])
        log.add_sequence(1, [3])
        np.testing.assert_array_equal(log.item_counts(), [0, 2, 0, 2])

    def test_pairs(self):
        log = InteractionLog(4)
        log.add_sequence(2, [1, 3])
        pairs = log.pairs()
        assert pairs.shape == (2, 2)
        assert set(map(tuple, pairs)) == {(2, 1), (2, 3)}

    def test_pairs_empty(self):
        assert InteractionLog(3).pairs().shape == (0, 2)

    def test_to_implicit_matrix(self):
        log = InteractionLog(3)
        log.add_sequence(1, [0, 2, 2])
        matrix = log.to_implicit_matrix(num_users=3)
        np.testing.assert_array_equal(matrix,
                                      [[0, 0, 0], [1, 0, 1], [0, 0, 0]])

    def test_iter_sequences_sorted(self):
        log = InteractionLog(3)
        log.add(5, 0)
        log.add(1, 1)
        assert [u for u, _ in log.iter_sequences()] == [1, 5]

    def test_contains_and_repr(self):
        log = InteractionLog(3)
        log.add(1, 0)
        assert 1 in log
        assert 2 not in log
        assert "users=1" in repr(log)


class TestDataset:
    def test_statistics_counts_all_splits(self):
        train = InteractionLog(10)
        train.add_sequence(0, [1, 2])
        train.add_sequence(1, [3])
        ds = Dataset(name="x", train=train, validation={0: 4, 1: 5},
                     test={0: 6, 1: 7})
        stats = ds.statistics()
        assert stats == {"users": 2, "items": 10, "samples": 7}
