"""Popularity utilities tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (InteractionLog, item_popularity, popularity_rank,
                        top_percent_items, zipf_weights)


class TestPopularityRank:
    def test_descending_with_id_tiebreak(self):
        pop = np.array([5, 9, 5, 0])
        np.testing.assert_array_equal(popularity_rank(pop), [1, 0, 2, 3])

    def test_all_equal_yields_id_order(self):
        pop = np.ones(5)
        np.testing.assert_array_equal(popularity_rank(pop), np.arange(5))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=30))
    def test_rank_is_permutation_and_sorted(self, values):
        pop = np.asarray(values)
        rank = popularity_rank(pop)
        assert sorted(rank.tolist()) == list(range(len(pop)))
        ranked_values = pop[rank]
        assert all(ranked_values[i] >= ranked_values[i + 1]
                   for i in range(len(pop) - 1))


class TestTopPercent:
    def test_ten_percent(self):
        pop = np.arange(100)[::-1]
        top = top_percent_items(pop, 10.0)
        np.testing.assert_array_equal(top, np.arange(10))

    def test_at_least_one_item(self):
        assert len(top_percent_items(np.array([3.0, 1.0]), 1.0)) == 1

    def test_invalid_percent(self):
        with pytest.raises(ValueError):
            top_percent_items(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            top_percent_items(np.ones(3), 101.0)


class TestZipf:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(50, 1.0)
        np.testing.assert_allclose(w.sum(), 1.0)
        assert all(w[i] >= w[i + 1] for i in range(49))

    def test_exponent_zero_is_uniform(self):
        np.testing.assert_allclose(zipf_weights(4, 0.0), np.full(4, 0.25))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


def test_item_popularity_equals_counts():
    log = InteractionLog(3)
    log.add_sequence(0, [0, 0, 2])
    np.testing.assert_array_equal(item_popularity(log), [2, 0, 1])
