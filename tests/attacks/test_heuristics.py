"""Heuristic attack baseline tests."""

import numpy as np
import pytest

from repro.attacks import (AttackBudget, BASELINE_CLASSES, HEURISTIC_NAMES,
                           MiddleAttack, PopularAttack, PowerItemAttack,
                           RandomAttack)


BUDGET = AttackBudget(num_attackers=6, trajectory_length=10)


class TestBudget:
    def test_total_clicks(self):
        assert AttackBudget(20, 20).total_clicks == 400

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            AttackBudget(0, 5)
        with pytest.raises(ValueError):
            AttackBudget(5, 0)

    def test_budget_exceeding_accounts_rejected(self, itempop_env):
        with pytest.raises(ValueError):
            RandomAttack(itempop_env, AttackBudget(99, 5))


@pytest.mark.parametrize("name", HEURISTIC_NAMES)
class TestHeuristicsCommon:
    def test_respects_budget(self, itempop_env, name):
        attack = BASELINE_CLASSES[name](itempop_env, BUDGET, seed=0)
        trajectories = attack.generate()
        assert len(trajectories) == 6
        assert all(len(t) == 10 for t in trajectories)

    def test_items_in_universe(self, itempop_env, name):
        attack = BASELINE_CLASSES[name](itempop_env, BUDGET, seed=0)
        for trajectory in attack.generate():
            assert all(0 <= item < itempop_env.num_items
                       for item in trajectory)

    def test_clicks_some_targets(self, itempop_env, name):
        attack = BASELINE_CLASSES[name](itempop_env, BUDGET, seed=0)
        clicks = [i for t in attack.generate() for i in t]
        assert any(i >= itempop_env.num_original_items for i in clicks)

    def test_deterministic_by_seed(self, itempop_env, name):
        a = BASELINE_CLASSES[name](itempop_env, BUDGET, seed=4).generate()
        b = BASELINE_CLASSES[name](itempop_env, BUDGET, seed=4).generate()
        assert a == b

    def test_run_returns_outcome(self, itempop_env, name):
        outcome = BASELINE_CLASSES[name](itempop_env, BUDGET, seed=0).run()
        assert outcome.method == name
        assert outcome.recnum >= 0
        assert len(outcome.trajectories) == 6


class TestAlternationPatterns:
    def test_random_alternates_target_original(self, itempop_env):
        attack = RandomAttack(itempop_env, BUDGET, seed=0)
        for trajectory in attack.generate():
            for step, item in enumerate(trajectory):
                if step % 2 == 0:
                    assert item >= itempop_env.num_original_items
                else:
                    assert item < itempop_env.num_original_items

    def test_popular_partner_items_are_popular(self, itempop_env):
        attack = PopularAttack(itempop_env, BUDGET, seed=0, top_percent=10.0)
        popularity = itempop_env.item_popularity
        threshold = np.percentile(
            popularity[:itempop_env.num_original_items], 85)
        for trajectory in attack.generate():
            for step, item in enumerate(trajectory):
                if step % 2 == 1:
                    assert popularity[item] >= threshold

    def test_middle_can_repeat_targets(self, itempop_env):
        attack = MiddleAttack(itempop_env,
                              AttackBudget(6, 40), seed=1)
        found_repeat = False
        for trajectory in attack.generate():
            for a, b in zip(trajectory, trajectory[1:]):
                if (a >= itempop_env.num_original_items
                        and b >= itempop_env.num_original_items):
                    found_repeat = True
        assert found_repeat

    def test_poweritem_partners_from_power_set(self, itempop_env):
        attack = PowerItemAttack(itempop_env, BUDGET, seed=0,
                                 num_power_items=5)
        power = set(attack.power_items.tolist())
        assert len(power) == 5
        for trajectory in attack.generate():
            for step, item in enumerate(trajectory):
                if step % 2 == 1:
                    assert item in power

    def test_power_items_lean_popular(self, itempop_env):
        attack = PowerItemAttack(itempop_env, BUDGET, seed=0,
                                 num_power_items=5)
        popularity = itempop_env.item_popularity
        mean_power = popularity[attack.power_items].mean()
        mean_all = popularity[:itempop_env.num_original_items].mean()
        assert mean_power > mean_all
