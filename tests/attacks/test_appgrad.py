"""AppGrad approximate-gradient attack tests."""

import numpy as np
import pytest

from repro.attacks import AppGrad, AttackBudget


BUDGET = AttackBudget(num_attackers=6, trajectory_length=10)


class TestMatrix:
    def test_rows_sum_to_trajectory_length(self, itempop_env):
        attack = AppGrad(itempop_env, BUDGET, seed=0, iterations=0)
        np.testing.assert_array_equal(attack.matrix.sum(axis=1),
                                      np.full(6, 10))

    def test_initialization_biased_toward_targets(self, itempop_env):
        attack = AppGrad(itempop_env, AttackBudget(6, 40), seed=0,
                         iterations=0)
        target_clicks = attack.matrix[:, itempop_env.target_items].sum()
        ratio = target_clicks / attack.matrix.sum()
        assert 0.35 < ratio < 0.65

    def test_proposal_preserves_row_sums(self, itempop_env):
        attack = AppGrad(itempop_env, BUDGET, seed=0, iterations=0)
        proposal = attack._propose(attack.matrix)
        np.testing.assert_array_equal(proposal.sum(axis=1), np.full(6, 10))
        assert (proposal >= 0).all()

    def test_trajectories_match_matrix(self, itempop_env):
        attack = AppGrad(itempop_env, BUDGET, seed=0, iterations=0)
        trajectories = attack._trajectories_from(attack.matrix)
        for row, trajectory in zip(attack.matrix, trajectories):
            counts = np.bincount(trajectory,
                                 minlength=itempop_env.num_items)
            np.testing.assert_array_equal(counts, row)


class TestOptimize:
    def test_optimization_never_decreases_tracked_value(self, itempop_env):
        attack = AppGrad(itempop_env, BUDGET, seed=0, iterations=5,
                         probes_per_iteration=2)
        initial_value = itempop_env.attack(
            attack._trajectories_from(attack.matrix))
        attack.optimize()
        assert attack.best_recnum >= initial_value

    def test_zero_iterations_keeps_initial_matrix(self, itempop_env):
        attack = AppGrad(itempop_env, BUDGET, seed=0, iterations=0)
        before = attack.matrix.copy()
        attack.optimize()
        np.testing.assert_array_equal(attack.matrix, before)

    def test_generate_returns_budgeted_trajectories(self, itempop_env):
        attack = AppGrad(itempop_env, BUDGET, seed=0, iterations=2,
                         probes_per_iteration=1)
        trajectories = attack.generate()
        assert len(trajectories) == 6
        assert all(len(t) == 10 for t in trajectories)
