"""ConsLOP linear-optimization attack tests."""

import numpy as np
import pytest

from repro.attacks import AttackBudget, ConsLOP
from repro.recsys import BlackBoxEnvironment, RecommenderSystem


BUDGET = AttackBudget(num_attackers=6, trajectory_length=10)


@pytest.fixture()
def covis_env(tiny_dataset):
    system = RecommenderSystem(tiny_dataset, "covisitation", seed=0,
                               num_attackers=6)
    return system, BlackBoxEnvironment(system)


class TestSolve:
    def test_budget_respected(self, covis_env):
        system, env = covis_env
        attack = ConsLOP(env, BUDGET, seed=0, system_log=system.clean_log)
        counts = attack.solve()
        assert counts.sum() <= BUDGET.total_clicks // 2
        assert (counts >= 0).all()

    def test_prefers_high_reach_low_degree(self, covis_env):
        system, env = covis_env
        attack = ConsLOP(env, BUDGET, seed=0, system_log=system.clean_log)
        reach, degree = attack._item_statistics()
        counts = attack.solve()
        weights = reach / degree
        chosen_weight = weights[counts > 0].mean() if (counts > 0).any() else 0
        assert chosen_weight >= np.median(weights)

    def test_works_without_privileged_log(self, covis_env):
        _, env = covis_env
        attack = ConsLOP(env, BUDGET, seed=0)  # popularity fallback
        counts = attack.solve()
        assert counts.sum() <= BUDGET.total_clicks // 2


class TestGenerate:
    def test_single_target_only(self, covis_env):
        system, env = covis_env
        attack = ConsLOP(env, BUDGET, seed=0, system_log=system.clean_log)
        target_clicks = {item for t in attack.generate() for item in t
                         if item >= env.num_original_items}
        assert target_clicks == {attack.target_item}

    def test_covisitation_pattern(self, covis_env):
        """Even positions click the target, odd positions the partner."""
        system, env = covis_env
        attack = ConsLOP(env, BUDGET, seed=0, system_log=system.clean_log)
        for trajectory in attack.generate():
            assert len(trajectory) == 10
            for step in range(0, 10, 2):
                assert trajectory[step] == attack.target_item

    def test_explicit_target_honored(self, covis_env):
        system, env = covis_env
        chosen = int(env.target_items[3])
        attack = ConsLOP(env, BUDGET, seed=0, target_item=chosen,
                         system_log=system.clean_log)
        assert attack.target_item == chosen

    def test_beats_clean_on_covisitation(self, covis_env):
        system, env = covis_env
        attack = ConsLOP(env, AttackBudget(6, 20), seed=0,
                         system_log=system.clean_log)
        assert attack.run().recnum >= env.clean_recnum()

    def test_reach_counts_distinct_users(self, covis_env):
        system, env = covis_env
        attack = ConsLOP(env, BUDGET, seed=0, system_log=system.clean_log)
        reach, _ = attack._item_statistics()
        assert reach.max() <= system.clean_log.num_users
