"""Divergence watchdog and running-moments tests."""

import math

import pytest

from repro.core.agent import StepStats
from repro.runtime import (DivergenceWatchdog, RunningMoments, WatchdogConfig)


def stats(step=0, mean=10.0, maximum=None, losses=()):
    return StepStats(step=step, mean_reward=mean,
                     max_reward=mean if maximum is None else maximum,
                     losses=list(losses))


class TestRunningMoments:
    def test_matches_batch_statistics(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        moments = RunningMoments()
        for value in values:
            moments.update(value)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert moments.count == len(values)
        assert moments.mean == pytest.approx(mean)
        assert moments.variance == pytest.approx(variance)
        assert moments.std == pytest.approx(math.sqrt(variance))

    def test_empty_moments_are_zero(self):
        moments = RunningMoments()
        assert moments.variance == 0.0
        assert moments.std == 0.0

    def test_state_dict_roundtrip_is_exact(self):
        moments = RunningMoments()
        for value in [0.1, 0.2, 0.30000000000000004, 1e300]:
            moments.update(value)
        restored = RunningMoments()
        restored.load_state_dict(moments.state_dict())
        assert restored.count == moments.count
        assert restored.mean == moments.mean
        assert restored.m2 == moments.m2


class TestDivergenceWatchdog:
    def test_nan_loss_fires_immediately(self):
        watchdog = DivergenceWatchdog()
        reason = watchdog.observe(stats(losses=[0.1, float("nan")]))
        assert reason is not None and "loss" in reason

    def test_inf_reward_fires_immediately(self):
        watchdog = DivergenceWatchdog()
        reason = watchdog.observe(stats(mean=float("inf")))
        assert reason is not None and "reward" in reason

    def test_healthy_sequence_stays_quiet(self):
        watchdog = DivergenceWatchdog()
        for step in range(50):
            assert watchdog.observe(stats(step=step, mean=10.0 + step,
                                          losses=[0.5])) is None

    def test_collapse_fires_after_patience(self):
        config = WatchdogConfig(ema_beta=0.0, collapse_fraction=0.5,
                                patience=3, min_peak=1.0)
        watchdog = DivergenceWatchdog(config)
        for _ in range(5):
            assert watchdog.observe(stats(mean=100.0)) is None
        assert watchdog.observe(stats(mean=1.0)) is None
        assert watchdog.observe(stats(mean=1.0)) is None
        reason = watchdog.observe(stats(mean=1.0))
        assert reason is not None and "collapse" in reason

    def test_recovery_resets_patience(self):
        config = WatchdogConfig(ema_beta=0.0, collapse_fraction=0.5,
                                patience=2, min_peak=1.0)
        watchdog = DivergenceWatchdog(config)
        assert watchdog.observe(stats(mean=100.0)) is None
        assert watchdog.observe(stats(mean=1.0)) is None
        assert watchdog.observe(stats(mean=100.0)) is None
        assert watchdog.observe(stats(mean=1.0)) is None

    def test_quiet_below_min_peak(self):
        config = WatchdogConfig(ema_beta=0.0, collapse_fraction=0.5,
                                patience=1, min_peak=1000.0)
        watchdog = DivergenceWatchdog(config)
        assert watchdog.observe(stats(mean=10.0)) is None
        assert watchdog.observe(stats(mean=0.0)) is None

    def test_reset_clears_collapse_state(self):
        config = WatchdogConfig(ema_beta=0.0, collapse_fraction=0.5,
                                patience=1, min_peak=1.0)
        watchdog = DivergenceWatchdog(config)
        assert watchdog.observe(stats(mean=100.0)) is None
        assert watchdog.observe(stats(mean=0.0)) is not None
        watchdog.reset()
        assert watchdog.observe(stats(mean=0.0)) is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WatchdogConfig(ema_beta=1.0)
        with pytest.raises(ValueError):
            WatchdogConfig(collapse_fraction=0.0)
        with pytest.raises(ValueError):
            WatchdogConfig(patience=0)
