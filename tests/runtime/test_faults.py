"""Fault-injecting environment tests (against a stub inner environment)."""

import math

import numpy as np
import pytest

from repro.runtime import (FaultPlan, FaultyEnvironment, QueryTimeoutError,
                           TransientEnvironmentError)


class StubEnvironment:
    """Minimal black-box surface whose reward is its own query counter."""

    def __init__(self, num_items=20, num_targets=4):
        self.num_original_items = num_items - num_targets
        self.num_items = num_items
        self.target_items = np.arange(self.num_original_items, num_items)
        self.num_attackers = 3
        self.item_popularity = np.ones(num_items)
        self._queries = 0

    def attack(self, trajectories):
        self._queries += 1
        return self._queries

    def clean_recnum(self):
        return 0

    @property
    def query_count(self):
        return self._queries


class TestFaultPlan:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=0.6, timeout_rate=0.6)

    def test_mixed_splits_the_rate(self):
        plan = FaultPlan.mixed(0.2, seed=5)
        assert plan.transient_rate == pytest.approx(0.1)
        assert plan.timeout_rate == pytest.approx(0.04)
        assert plan.corrupt_rate == pytest.approx(0.04)
        assert plan.stale_rate == pytest.approx(0.02)
        assert plan.total_rate == pytest.approx(0.2)
        assert plan.seed == 5

    def test_mixed_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FaultPlan.mixed(1.5)


class TestFaultyEnvironment:
    def run_campaign(self, plan, queries=200):
        env = FaultyEnvironment(StubEnvironment(), plan)
        outcomes = []
        for _ in range(queries):
            try:
                outcomes.append(env.attack([[0]]))
            except TransientEnvironmentError as error:
                outcomes.append(type(error).__name__)
        return env, outcomes

    def test_zero_rate_is_transparent(self):
        env, outcomes = self.run_campaign(FaultPlan(), queries=10)
        assert outcomes == [float(i) for i in range(1, 11)]
        assert env.injected == {"transient": 0, "timeout": 0, "corrupt": 0,
                                "stale": 0}

    def test_seeded_schedule_is_deterministic(self):
        plan = FaultPlan.mixed(0.3, seed=11)
        _, first = self.run_campaign(plan)
        _, second = self.run_campaign(plan)
        for a, b in zip(first, second):
            if isinstance(a, float) and math.isnan(a):
                assert isinstance(b, float) and math.isnan(b)
            else:
                assert a == b

    def test_transient_fault_raises_without_querying(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(transient_rate=1.0))
        with pytest.raises(TransientEnvironmentError):
            env.attack([[0]])
        assert env.query_count == 0
        assert env.injected["transient"] == 1

    def test_timeout_fault_reports_latency(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(timeout_rate=1.0, deadline=0.5))
        with pytest.raises(QueryTimeoutError, match="deadline"):
            env.attack([[0]])
        assert env.injected["timeout"] == 1
        # QueryTimeoutError is transient: the retry loop will re-issue it.
        assert issubclass(QueryTimeoutError, TransientEnvironmentError)

    def test_corrupt_fault_returns_nan_but_queries(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(corrupt_rate=1.0))
        assert math.isnan(env.attack([[0]]))
        assert env.query_count == 1

    def test_stale_fault_replays_previous_reward(self):
        inner = StubEnvironment()
        env = FaultyEnvironment(inner, FaultPlan())
        first = env.attack([[0]])
        env.plan = FaultPlan(stale_rate=1.0)
        stale = env.attack([[0]])
        assert stale == first
        assert inner.query_count == 1
        assert env.injected["stale"] == 1

    def test_stale_without_history_falls_through_to_real_query(self):
        env = FaultyEnvironment(StubEnvironment(), FaultPlan(stale_rate=1.0))
        assert env.attack([[0]]) == 1.0
        assert env.injected["stale"] == 0

    def test_mirrors_attacker_knowledge_surface(self):
        inner = StubEnvironment()
        env = FaultyEnvironment(inner, FaultPlan())
        assert env.num_items == inner.num_items
        assert env.num_original_items == inner.num_original_items
        assert env.num_attackers == inner.num_attackers
        np.testing.assert_array_equal(env.target_items, inner.target_items)
        np.testing.assert_array_equal(env.item_popularity,
                                      inner.item_popularity)

    def test_injection_counts_approximate_the_rates(self):
        plan = FaultPlan.mixed(0.4, seed=3)
        env, _ = self.run_campaign(plan, queries=1000)
        total = sum(env.injected.values())
        assert 300 <= total <= 500
        assert env.injected["transient"] > env.injected["stale"]

    def test_clean_recnum_is_never_faulted(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(transient_rate=1.0))
        assert env.clean_recnum() == 0
