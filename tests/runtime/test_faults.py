"""Fault-injecting environment tests (against a stub inner environment)."""

import math

import numpy as np
import pytest

from repro.runtime import (FaultPlan, FaultyEnvironment, QueryTimeoutError,
                           TransientEnvironmentError, WorkerFaultPlan,
                           query_digest)


class StubEnvironment:
    """Minimal black-box surface whose reward is its own query counter."""

    def __init__(self, num_items=20, num_targets=4):
        self.num_original_items = num_items - num_targets
        self.num_items = num_items
        self.target_items = np.arange(self.num_original_items, num_items)
        self.num_attackers = 3
        self.item_popularity = np.ones(num_items)
        self._queries = 0
        self.clean_calls = 0

    def attack(self, trajectories):
        self._queries += 1
        return self._queries

    def clean_recnum(self):
        self.clean_calls += 1
        return 7

    @property
    def query_count(self):
        return self._queries


class TestFaultPlan:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=0.6, timeout_rate=0.6)

    def test_mixed_splits_the_rate(self):
        plan = FaultPlan.mixed(0.2, seed=5)
        assert plan.transient_rate == pytest.approx(0.1)
        assert plan.timeout_rate == pytest.approx(0.04)
        assert plan.corrupt_rate == pytest.approx(0.04)
        assert plan.stale_rate == pytest.approx(0.02)
        assert plan.total_rate == pytest.approx(0.2)
        assert plan.seed == 5

    def test_mixed_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FaultPlan.mixed(1.5)


class TestFaultyEnvironment:
    def run_campaign(self, plan, queries=200):
        env = FaultyEnvironment(StubEnvironment(), plan)
        outcomes = []
        for _ in range(queries):
            try:
                outcomes.append(env.attack([[0]]))
            except TransientEnvironmentError as error:
                outcomes.append(type(error).__name__)
        return env, outcomes

    def test_zero_rate_is_transparent(self):
        env, outcomes = self.run_campaign(FaultPlan(), queries=10)
        assert outcomes == [float(i) for i in range(1, 11)]
        assert env.injected == {"transient": 0, "timeout": 0, "corrupt": 0,
                                "stale": 0}

    def test_seeded_schedule_is_deterministic(self):
        plan = FaultPlan.mixed(0.3, seed=11)
        _, first = self.run_campaign(plan)
        _, second = self.run_campaign(plan)
        for a, b in zip(first, second):
            if isinstance(a, float) and math.isnan(a):
                assert isinstance(b, float) and math.isnan(b)
            else:
                assert a == b

    def test_transient_fault_raises_without_querying(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(transient_rate=1.0))
        with pytest.raises(TransientEnvironmentError):
            env.attack([[0]])
        assert env.query_count == 0
        assert env.injected["transient"] == 1

    def test_timeout_fault_reports_latency(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(timeout_rate=1.0, deadline=0.5))
        with pytest.raises(QueryTimeoutError, match="deadline"):
            env.attack([[0]])
        assert env.injected["timeout"] == 1
        # QueryTimeoutError is transient: the retry loop will re-issue it.
        assert issubclass(QueryTimeoutError, TransientEnvironmentError)

    def test_corrupt_fault_returns_nan_but_queries(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(corrupt_rate=1.0))
        assert math.isnan(env.attack([[0]]))
        assert env.query_count == 1

    def test_stale_fault_returns_clean_baseline(self):
        inner = StubEnvironment()
        env = FaultyEnvironment(inner, FaultPlan(stale_rate=1.0))
        # The cache serves pre-attack recommendations: the clean RecNum,
        # not the query's true reward, and the real query never runs.
        assert env.attack([[0]]) == 7.0
        assert inner.query_count == 0
        assert env.injected["stale"] == 1

    def test_stale_baseline_is_cached_across_queries(self):
        inner = StubEnvironment()
        env = FaultyEnvironment(inner, FaultPlan(stale_rate=1.0))
        assert env.attack([[0]]) == 7.0
        assert env.attack([[1]]) == 7.0
        assert inner.clean_calls == 1

    def test_schedule_is_order_independent(self):
        plan = FaultPlan.mixed(0.5, seed=9)
        contents = [[[i]] for i in range(40)]

        class PureStub(StubEnvironment):
            """Reward is a pure function of content, like the real system."""

            def attack(self, trajectories):
                self._queries += 1
                return sum(sum(t) for t in trajectories)

        def outcome(env, trajectories):
            try:
                return env.attack(trajectories)
            except TransientEnvironmentError as error:
                return type(error).__name__

        forward = FaultyEnvironment(PureStub(), plan)
        reverse = FaultyEnvironment(PureStub(), plan)
        first = {i: outcome(forward, c) for i, c in enumerate(contents)}
        second = {i: outcome(reverse, contents[i])
                  for i in reversed(range(len(contents)))}
        for i in range(len(contents)):
            a, b = first[i], second[i]
            if isinstance(a, float) and math.isnan(a):
                assert isinstance(b, float) and math.isnan(b)
            else:
                assert a == b

    def test_retrying_same_content_gets_fresh_draws(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(transient_rate=0.5, seed=0))
        faults = 0
        for _ in range(100):
            try:
                reward = env.attack([[3]])
            except TransientEnvironmentError:
                faults += 1
                continue
            break
        else:  # pragma: no cover - deterministic schedule converges
            pytest.fail("per-occurrence draws never produced a healthy query")
        assert reward == 1.0
        assert env.injected["transient"] == faults
        assert faults < 100

    def test_injected_errors_are_replica_safe(self):
        transient_env = FaultyEnvironment(StubEnvironment(),
                                          FaultPlan(transient_rate=1.0))
        with pytest.raises(TransientEnvironmentError) as info:
            transient_env.attack([[0]])
        assert getattr(info.value, "replica_safe", False)
        timeout_env = FaultyEnvironment(StubEnvironment(),
                                        FaultPlan(timeout_rate=1.0))
        with pytest.raises(QueryTimeoutError) as info:
            timeout_env.attack([[0]])
        assert getattr(info.value, "replica_safe", False)

    def test_mirrors_attacker_knowledge_surface(self):
        inner = StubEnvironment()
        env = FaultyEnvironment(inner, FaultPlan())
        assert env.num_items == inner.num_items
        assert env.num_original_items == inner.num_original_items
        assert env.num_attackers == inner.num_attackers
        np.testing.assert_array_equal(env.target_items, inner.target_items)
        np.testing.assert_array_equal(env.item_popularity,
                                      inner.item_popularity)

    def test_injection_counts_approximate_the_rates(self):
        plan = FaultPlan.mixed(0.4, seed=3)
        env, _ = self.run_campaign(plan, queries=1000)
        total = sum(env.injected.values())
        assert 300 <= total <= 500
        assert env.injected["transient"] > env.injected["stale"]

    def test_clean_recnum_is_never_faulted(self):
        env = FaultyEnvironment(StubEnvironment(),
                                FaultPlan(transient_rate=1.0))
        assert env.clean_recnum() == 7


class TestQueryDigest:
    def test_stable_and_content_addressed(self):
        assert query_digest([[1, 2], [3]]) == query_digest([[1, 2], [3]])
        assert query_digest([[1, 2], [3]]) != query_digest([[1, 2], [4]])
        assert query_digest([[1]], seed=0) != query_digest([[1]], seed=1)

    def test_lists_and_tuples_hash_alike(self):
        assert query_digest([[1, 2]]) == query_digest(((1, 2),))

    def test_campaign_tags_separate_identical_trajectories(self):
        assert (query_digest(("a", [[1]]))
                != query_digest(("b", [[1]])))

    def test_numpy_scalars_hash_as_ints(self):
        assert (query_digest([[np.int64(5)]])
                == query_digest([[5]]))


class TestWorkerFaultPlan:
    def test_validates_rates(self):
        with pytest.raises(ValueError):
            WorkerFaultPlan(kill_rate=1.5)
        with pytest.raises(ValueError):
            WorkerFaultPlan(kill_rate=0.6, stall_rate=0.6)
        with pytest.raises(ValueError):
            WorkerFaultPlan(stall_seconds=0.0)

    def test_directive_is_deterministic_per_task_and_attempt(self):
        plan = WorkerFaultPlan(kill_rate=0.3, stall_rate=0.3, seed=4)
        for task in ([[1, 2]], [[3]], ("camp", [[1]])):
            assert plan.directive(task, 1) == plan.directive(task, 1)

    def test_attempts_draw_independently(self):
        plan = WorkerFaultPlan(kill_rate=0.4, stall_rate=0.3,
                               stall_seconds=0.02, seed=8)
        directives = {attempt: plan.directive([[9]], attempt)
                      for attempt in range(1, 30)}
        kinds = {d[0] for d in directives.values() if d is not None}
        assert kinds == {"kill", "stall"}
        assert any(d is None for d in directives.values())
        stalls = [d for d in directives.values()
                  if d is not None and d[0] == "stall"]
        assert all(d[1] == 0.02 for d in stalls)

    def test_rates_are_approximated_over_many_tasks(self):
        plan = WorkerFaultPlan(kill_rate=0.2, stall_rate=0.2, seed=1)
        drawn = [plan.directive([[i]], 1) for i in range(1000)]
        kills = sum(1 for d in drawn if d is not None and d[0] == "kill")
        stalls = sum(1 for d in drawn if d is not None and d[0] == "stall")
        assert 130 <= kills <= 270
        assert 130 <= stalls <= 270

    def test_zero_rates_never_fire(self):
        plan = WorkerFaultPlan()
        assert all(plan.directive([[i]], 1) is None for i in range(50))
