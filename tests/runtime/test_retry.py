"""Retry/backoff policy and failure-budget tests."""

import numpy as np
import pytest

from repro.runtime import (FailureBudget, FailureBudgetExhausted,
                           FatalEnvironmentError, RetriesExhaustedError,
                           RetryPolicy, TransientEnvironmentError,
                           call_with_retry)


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)

    def test_backoff_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0,
                             jitter=0.0)
        assert policy.backoff(5) == pytest.approx(3.0)

    def test_jitter_stays_within_symmetric_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        delays = [policy.backoff(1, rng) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in delays)
        assert max(delays) > 1.1 and min(delays) < 0.9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestCallWithRetry:
    def test_success_without_failure_has_zero_retries(self):
        outcome = call_with_retry(lambda: 42, RetryPolicy(),
                                  sleep=lambda s: None)
        assert outcome.value == 42
        assert outcome.retries == 0

    def test_transient_failures_are_retried(self):
        calls = {"n": 0}
        sleeps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientEnvironmentError("flaky")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             jitter=0.0)
        outcome = call_with_retry(flaky, policy, sleep=sleeps.append)
        assert outcome.value == "ok"
        assert outcome.retries == 2
        assert sleeps == pytest.approx([0.1, 0.2])

    def test_exhausted_retries_wrap_last_error(self):
        def always_fails():
            raise TransientEnvironmentError("still down")

        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            call_with_retry(always_fails, policy, sleep=lambda s: None)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, TransientEnvironmentError)

    def test_fatal_errors_propagate_immediately(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise FatalEnvironmentError("dead")

        with pytest.raises(FatalEnvironmentError):
            call_with_retry(fatal, RetryPolicy(), sleep=lambda s: None)
        assert calls["n"] == 1

    def test_unrelated_errors_propagate_immediately(self):
        def broken():
            raise KeyError("not an environment problem")

        with pytest.raises(KeyError):
            call_with_retry(broken, RetryPolicy(), sleep=lambda s: None)

    def test_on_retry_hook_sees_each_failure(self):
        calls = {"n": 0}
        seen = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientEnvironmentError(f"fail {calls['n']}")
            return True

        call_with_retry(flaky, RetryPolicy(jitter=0.0), sleep=lambda s: None,
                        on_retry=lambda a, e, d: seen.append((a, str(e))))
        assert seen == [(1, "fail 1"), (2, "fail 2")]


class TestFailureBudget:
    def test_spend_within_limit(self):
        budget = FailureBudget(3)
        budget.spend()
        budget.spend()
        assert budget.remaining == 1

    def test_exceeding_limit_raises(self):
        budget = FailureBudget(1)
        budget.spend(reason="first")
        with pytest.raises(FailureBudgetExhausted, match="budget of 1"):
            budget.spend(reason="second")

    def test_zero_budget_fails_on_first_spend(self):
        with pytest.raises(FailureBudgetExhausted):
            FailureBudget(0).spend()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            FailureBudget(-1)
