"""End-to-end resilient campaign tests: chaos, quarantine, rollback."""

import numpy as np
import pytest

from repro.core import PoisonRec, PoisonRecConfig
from repro.recsys import BlackBoxEnvironment
from repro.runtime import (CampaignDivergenceError, FailureBudgetExhausted,
                           FaultPlan, FaultyEnvironment, ResilienceConfig,
                           RetryPolicy, WatchdogConfig)

def make_agent(env, seed=0):
    cfg = PoisonRecConfig.ci(num_attackers=6, trajectory_length=8,
                             samples_per_step=4, batch_size=4,
                             embedding_dim=8, seed=seed)
    return PoisonRec(env, cfg)


def chaos_env(system, rate, seed=0):
    system.reset()
    return FaultyEnvironment(BlackBoxEnvironment(system),
                             FaultPlan.mixed(rate, seed=seed))


class TestChaosCampaign:
    def test_campaign_survives_ten_percent_faults(self, itempop_system):
        env = chaos_env(itempop_system, 0.1, seed=3)
        agent = make_agent(env)
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=4),
                                      watchdog=None,
                                      sleep=lambda seconds: None)
        result = agent.train(10, resilience=resilience)
        assert len(result.history) == 10
        assert result.best_reward > float("-inf")
        assert sum(env.injected.values()) > 0

    def test_resilience_without_faults_matches_plain_run(self,
                                                         itempop_system):
        itempop_system.reset()
        plain = make_agent(BlackBoxEnvironment(itempop_system))
        plain.train(4)

        itempop_system.reset()
        resilient = make_agent(BlackBoxEnvironment(itempop_system))
        resilient.train(4, resilience=ResilienceConfig(watchdog=None))

        for a, b in zip(plain.result.history, resilient.result.history):
            assert a.mean_reward == b.mean_reward
            assert a.losses == b.losses

    def test_exhausted_retries_quarantine_the_sample(self, itempop_system):
        env = chaos_env(itempop_system, 0.0)
        env.plan = FaultPlan(transient_rate=0.4, seed=7)
        agent = make_agent(env)
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=1),
                                      watchdog=None,
                                      sleep=lambda seconds: None)
        result = agent.train(6, resilience=resilience)
        assert len(result.history) == 6
        quarantined = sum(s.quarantined for s in result.history)
        assert quarantined > 0

    def test_failure_budget_stops_hopeless_campaign(self, itempop_system):
        env = chaos_env(itempop_system, 0.0)
        env.plan = FaultPlan(transient_rate=1.0)
        agent = make_agent(env)
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=2),
                                      failure_budget=3, watchdog=None,
                                      sleep=lambda seconds: None)
        with pytest.raises(FailureBudgetExhausted):
            agent.train(10, resilience=resilience)

    def test_step_stats_carry_retry_telemetry(self, itempop_system):
        env = chaos_env(itempop_system, 0.3, seed=1)
        agent = make_agent(env)
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=5),
                                      watchdog=None,
                                      sleep=lambda seconds: None)
        result = agent.train(6, resilience=resilience)
        assert sum(s.retries for s in result.history) > 0
        assert all(s.rollbacks == 0 for s in result.history)


class TestDivergenceRollback:
    def test_nan_loss_triggers_rollback_to_checkpoint(self, itempop_system,
                                                      tmp_path):
        itempop_system.reset()
        agent = make_agent(BlackBoxEnvironment(itempop_system))
        resilience = ResilienceConfig(
            checkpoint_path=tmp_path / "campaign.npz", checkpoint_every=1,
            watchdog=WatchdogConfig(), lr_backoff=0.5,
            sleep=lambda seconds: None)

        real_update = agent.trainer.update
        poisoned = {"armed": False, "fired": False}

        def update(experiences, **kwargs):
            if poisoned["armed"] and not poisoned["fired"]:
                poisoned["fired"] = True
                return [float("nan")]
            return real_update(experiences, **kwargs)

        agent.trainer.update = update
        agent.train(2, resilience=resilience)
        poisoned["armed"] = True
        original_lr = agent.trainer.optimizer.lr
        result = agent.train(4, resilience=resilience)

        assert poisoned["fired"]
        assert agent.step == 6
        # The poisoned step was rolled back: every surviving entry is finite.
        assert all(np.isfinite(loss) for s in result.history
                   for loss in s.losses)
        assert result.history[-1].rollbacks == 1
        assert agent.trainer.optimizer.lr == pytest.approx(0.5 * original_lr)

    def test_rollback_without_checkpoint_decays_lr_only(self,
                                                        itempop_system):
        itempop_system.reset()
        agent = make_agent(BlackBoxEnvironment(itempop_system))
        resilience = ResilienceConfig(watchdog=WatchdogConfig(),
                                      lr_backoff=0.25,
                                      sleep=lambda seconds: None)
        real_update = agent.trainer.update
        fired = {"done": False}

        def update(experiences, **kwargs):
            if not fired["done"]:
                fired["done"] = True
                return [float("inf")]
            return real_update(experiences, **kwargs)

        agent.trainer.update = update
        original_lr = agent.trainer.optimizer.lr
        agent.train(3, resilience=resilience)
        assert agent.trainer.optimizer.lr == pytest.approx(
            0.25 * original_lr)

    def test_persistent_divergence_raises_after_allowance(self,
                                                          itempop_system):
        itempop_system.reset()
        agent = make_agent(BlackBoxEnvironment(itempop_system))
        resilience = ResilienceConfig(watchdog=WatchdogConfig(),
                                      max_rollbacks=2,
                                      sleep=lambda seconds: None)
        agent.trainer.update = lambda *args, **kwargs: [float("nan")]
        with pytest.raises(CampaignDivergenceError):
            agent.train(10, resilience=resilience)

    def test_anomaly_mode_catches_corrupted_updates(self, itempop_system):
        itempop_system.reset()
        agent = make_agent(BlackBoxEnvironment(itempop_system))
        resilience = ResilienceConfig(watchdog=None, anomaly_mode=True,
                                      sleep=lambda seconds: None)
        result = agent.train(2, resilience=resilience)
        assert len(result.history) == 2
