"""Campaign checkpoint tests: atomic write, bit-identical resume."""

import json

import numpy as np
import pytest

from repro.core import PoisonRec, PoisonRecConfig
from repro.runtime import (CorruptCheckpointError, ResilienceConfig,
                           as_npz_path, atomic_savez, load_campaign,
                           save_campaign)


def make_agent(env, seed=0, dim=8):
    cfg = PoisonRecConfig.ci(num_attackers=6, trajectory_length=8,
                             samples_per_step=4, batch_size=4,
                             embedding_dim=dim, seed=seed)
    return PoisonRec(env, cfg)


def assert_agents_identical(reference, resumed):
    assert len(reference.result.history) == len(resumed.result.history)
    for a, b in zip(reference.result.history, resumed.result.history):
        assert a.step == b.step
        assert a.mean_reward == b.mean_reward
        assert a.max_reward == b.max_reward
        assert a.losses == b.losses
    for p, q in zip(reference.policy.parameters(),
                    resumed.policy.parameters()):
        np.testing.assert_array_equal(p.data, q.data)
    assert (reference.rng.bit_generator.state
            == resumed.rng.bit_generator.state)
    assert (reference.trainer.rng.bit_generator.state
            == resumed.trainer.rng.bit_generator.state)
    assert reference.result.best_reward == resumed.result.best_reward
    assert (reference.result.best_trajectories
            == resumed.result.best_trajectories)
    assert (reference.reward_moments.state_dict()
            == resumed.reward_moments.state_dict())


class TestAtomicSavez:
    def test_appends_npz_suffix(self, tmp_path):
        final = atomic_savez(tmp_path / "archive", {"x": np.arange(3)})
        assert final == tmp_path / "archive.npz"
        assert final.exists()

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_savez(tmp_path / "archive.npz", {"x": np.arange(3)})
        assert [p.name for p in tmp_path.iterdir()] == ["archive.npz"]

    def test_overwrite_preserves_readers_view(self, tmp_path):
        path = tmp_path / "archive.npz"
        atomic_savez(path, {"x": np.arange(3)})
        atomic_savez(path, {"x": np.arange(5)})
        with np.load(path) as archive:
            assert archive["x"].shape == (5,)


class TestSaveLoadCampaign:
    def test_resume_is_bit_identical_to_uninterrupted(self, itempop_system,
                                                      tmp_path):
        from repro.recsys import BlackBoxEnvironment
        ck = tmp_path / "campaign.npz"

        itempop_system.reset()
        reference = make_agent(BlackBoxEnvironment(itempop_system))
        reference.train(6)

        itempop_system.reset()
        first = make_agent(BlackBoxEnvironment(itempop_system))
        first.train(3)
        save_campaign(first, ck)

        itempop_system.reset()
        resumed = make_agent(BlackBoxEnvironment(itempop_system))
        resumed.train(3, resume_from=ck)

        assert resumed.step == 6
        assert_agents_identical(reference, resumed)

    def test_interrupted_campaign_resumes_exactly(self, itempop_system,
                                                  tmp_path):
        """Simulated kill -9 mid-campaign: resume from the last checkpoint."""
        from repro.recsys import BlackBoxEnvironment

        class Interrupt(RuntimeError):
            pass

        ck = tmp_path / "campaign.npz"
        resilience = ResilienceConfig(checkpoint_path=ck, checkpoint_every=2,
                                      watchdog=None)

        itempop_system.reset()
        reference = make_agent(BlackBoxEnvironment(itempop_system))
        reference.train(6)

        def interrupt_at(stats):
            if stats.step == 4:
                raise Interrupt

        itempop_system.reset()
        victim = make_agent(BlackBoxEnvironment(itempop_system))
        with pytest.raises(Interrupt):
            victim.train(6, callback=interrupt_at, resilience=resilience)

        itempop_system.reset()
        survivor = make_agent(BlackBoxEnvironment(itempop_system))
        metadata = load_campaign(survivor, ck)
        assert metadata["step"] == 4
        survivor.train(2)
        assert_agents_identical(reference, survivor)

    def test_missing_file_raises_file_not_found(self, itempop_env, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_campaign(make_agent(itempop_env), tmp_path / "absent.npz")

    def test_truncated_archive_raises_corrupt_error(self, itempop_env,
                                                    tmp_path):
        agent = make_agent(itempop_env)
        agent.train(1)
        ck = save_campaign(agent, tmp_path / "campaign.npz")
        ck.write_bytes(ck.read_bytes()[:100])
        with pytest.raises(CorruptCheckpointError, match="truncated"):
            load_campaign(make_agent(itempop_env), ck)

    def test_garbage_file_raises_corrupt_error(self, itempop_env, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CorruptCheckpointError):
            load_campaign(make_agent(itempop_env), garbage)

    def test_foreign_npz_raises_corrupt_error(self, itempop_env, tmp_path):
        foreign = atomic_savez(tmp_path / "foreign.npz",
                               {"weights": np.arange(4)})
        with pytest.raises(CorruptCheckpointError):
            load_campaign(make_agent(itempop_env), foreign)

    def test_dim_mismatch_raises_value_error(self, itempop_env, tmp_path):
        agent = make_agent(itempop_env, dim=8)
        ck = save_campaign(agent, tmp_path / "campaign.npz")
        with pytest.raises(ValueError, match="dim"):
            load_campaign(make_agent(itempop_env, dim=16), ck)

    def test_untrained_best_reward_roundtrips_as_null(self, itempop_env,
                                                      tmp_path):
        agent = make_agent(itempop_env)
        assert agent.result.best_reward == float("-inf")
        ck = save_campaign(agent, tmp_path / "campaign.npz")

        # The stored metadata must be strict JSON: parse_constant fires on
        # any non-standard literal (NaN / Infinity / -Infinity).
        with np.load(ck) as archive:
            text = bytes(archive["campaign_json"]).decode()

        def reject(token):
            raise AssertionError(f"non-standard JSON literal {token!r}")

        metadata = json.loads(text, parse_constant=reject)
        assert metadata["best_reward"] is None

        fresh = make_agent(itempop_env)
        fresh.result.best_reward = 123.0
        loaded = load_campaign(fresh, ck)
        assert loaded["best_reward"] == float("-inf")
        assert fresh.result.best_reward == float("-inf")

    def test_nan_history_rewards_roundtrip(self, itempop_env, tmp_path):
        from repro.core.agent import StepStats
        agent = make_agent(itempop_env)
        agent.result.history.append(
            StepStats(step=0, mean_reward=float("nan"),
                      max_reward=float("-inf"), losses=[float("inf")]))
        agent._step = 1
        ck = save_campaign(agent, tmp_path / "campaign.npz")
        fresh = make_agent(itempop_env)
        load_campaign(fresh, ck)
        entry = fresh.result.history[0]
        assert np.isnan(entry.mean_reward)
        assert entry.max_reward == float("-inf")
        assert entry.losses == [float("inf")]

    def test_checkpoint_restores_optimizer_moments(self, itempop_env,
                                                   tmp_path):
        agent = make_agent(itempop_env)
        agent.train(2)
        ck = save_campaign(agent, tmp_path / "campaign.npz")
        fresh = make_agent(itempop_env)
        load_campaign(fresh, ck)
        original = agent.trainer.optimizer
        restored = fresh.trainer.optimizer
        assert restored._t == original._t
        assert restored.lr == original.lr
        for m, n in zip(original._m, restored._m):
            if m is None:
                assert n is None
            else:
                np.testing.assert_array_equal(m, n)

    def test_as_npz_path_matches_numpy_convention(self, tmp_path):
        assert as_npz_path("camp").name == "camp.npz"
        assert as_npz_path("camp.npz").name == "camp.npz"
        assert as_npz_path(tmp_path / "a.b").name == "a.b.npz"
