"""FleetTelemetry: rollups, hydration, resumed-fleet rendering, obs."""

from __future__ import annotations

import io

from repro.obs import RunTelemetry
from repro.serve import (CampaignScheduler, CampaignSpec, CampaignStatus,
                         FleetTelemetry)


class FakeStats:
    def __init__(self, step, mean=1.0, best=5.0, retries=0, quarantined=0):
        self.step = step
        self.mean_reward = mean
        self.max_reward = best
        self.retries = retries
        self.quarantined = quarantined


class FakeProfiler:
    def __init__(self, summary):
        self._summary = summary

    def summary(self):
        return self._summary


def make_scheduler(directory, builder, **kwargs):
    kwargs.setdefault("sleep", lambda seconds: None)
    return CampaignScheduler(directory, builder=builder, **kwargs)


class TestPhaseTotals:
    def test_totals_sum_across_campaigns(self):
        telemetry = FleetTelemetry()
        telemetry.rollup_profiler("a", FakeProfiler(
            {"score": {"seconds": 1.0}, "retrain": {"seconds": 2.0}}))
        telemetry.rollup_profiler("b", FakeProfiler(
            {"score": {"seconds": 0.5}}))
        telemetry.rollup_profiler("c", None)  # tolerated
        assert telemetry.phase_totals() == {"score": 1.5, "retrain": 2.0}

    def test_repeated_rollups_accumulate(self):
        telemetry = FleetTelemetry()
        profiler = FakeProfiler({"merge": {"seconds": 0.25}})
        telemetry.rollup_profiler("a", profiler)
        telemetry.rollup_profiler("a", profiler)
        assert telemetry.phase_totals() == {"merge": 0.5}


class TestHydration:
    def test_hydrate_seeds_counters_and_best(self):
        telemetry = FleetTelemetry()
        telemetry.hydrate("a", steps=5, best=42.0, retries=2,
                          quarantined=1, restarts=3)
        entry = telemetry.campaigns["a"]
        assert (entry.steps, entry.best_reward, entry.retries,
                entry.quarantined, entry.restarts) == (5, 42.0, 2, 1, 3)
        table = telemetry.render_table()
        assert "42" in table and "-" not in table.splitlines()[-1].split()

    def test_hydration_never_shrinks_live_counters(self):
        telemetry = FleetTelemetry()
        for step in range(4):
            telemetry.observe("a", FakeStats(step, best=50.0, retries=1))
        telemetry.hydrate("a", steps=2, best=10.0, retries=1)
        entry = telemetry.campaigns["a"]
        assert entry.steps == 4  # live observations win when larger
        assert entry.best_reward == 50.0
        assert entry.retries == 4

    def test_observe_layers_on_top_of_hydration(self):
        telemetry = FleetTelemetry()
        telemetry.hydrate("a", steps=5, best=42.0)
        telemetry.observe("a", FakeStats(5, best=30.0))
        entry = telemetry.campaigns["a"]
        assert entry.best_reward == 42.0  # journaled best still wins
        assert entry.steps == 6


class TestObsMirroring:
    def test_counters_and_events_mirrored(self):
        obs = RunTelemetry()
        telemetry = FleetTelemetry(obs=obs)
        telemetry.observe("a", FakeStats(0, best=7.0, retries=2,
                                         quarantined=1))
        telemetry.note_restart("a")
        telemetry.event("tier change")
        assert obs.metrics.counter("fleet.steps", campaign="a").value == 1
        assert obs.metrics.counter("fleet.retries", campaign="a").value == 2
        assert obs.metrics.counter("fleet.restarts", campaign="a").value == 1
        assert obs.metrics.gauge("fleet.best_reward",
                                 campaign="a").value == 7.0
        assert obs.events[0]["message"] == "tier change"

    def test_stream_still_narrates(self):
        stream = io.StringIO()
        telemetry = FleetTelemetry(stream=stream)
        telemetry.observe("a", FakeStats(0))
        telemetry.event("drain")
        text = stream.getvalue()
        assert "[a] step" in text and "== drain" in text


class TestResumedFleetTable:
    def test_resumed_table_shows_journaled_history(self, tmp_path,
                                                   tiny_builder):
        """Regression: resumed fleets rendered ``best=-`` and zeroed
        counters because the fresh FleetTelemetry had streamed nothing."""
        fleet_dir = tmp_path / "fleet"
        first = make_scheduler(fleet_dir, tiny_builder, slice_steps=2)
        first.submit(CampaignSpec(name="done", steps=2, seed=0))
        result = first.run()
        best = result.records["done"].agent.result.best_reward
        assert result.all_completed

        second = make_scheduler(fleet_dir, tiny_builder, slice_steps=2)
        second.resume()
        record = second.records["done"]
        assert record.status is CampaignStatus.COMPLETED
        row = next(line for line
                   in second.telemetry.render_table(second.records)
                   .splitlines() if line.startswith("done"))
        assert f"{best:.0f}" in row
        cells = row.split()
        assert cells[2] == "2"      # steps from the journal
        assert cells[3] != "-"      # best hydrated, not blank

    def test_interleaved_campaign_event_order(self, tmp_path,
                                              tiny_builder):
        """Fair-share with slice_steps=1 alternates campaigns; the obs
        slice spans record that interleaving in order."""
        obs = RunTelemetry()
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=1,
                                   obs=obs)
        scheduler.submit(CampaignSpec(name="a", steps=2, seed=0))
        scheduler.submit(CampaignSpec(name="b", steps=2, seed=1))
        result = scheduler.run()
        assert result.all_completed
        slices = [span.attrs["campaign"] for span in obs.tracer.spans
                  if span.name == "slice"]
        assert slices == ["a", "b", "a", "b"]
        # Every traced step belongs to the campaign whose slice span was
        # open at the time (ordering survives the interleaving).
        spans_by_id = {span.span_id: span for span in obs.tracer.spans}
        steps = [span for span in obs.tracer.spans
                 if span.name == "train_step"]
        assert steps, "agent spans should nest under scheduler slices"
        for span in steps:
            parent = spans_by_id[span.parent_id]
            assert parent.name == "slice"
            assert parent.attrs["campaign"] == span.attrs["campaign"]
