"""Self-contained fleet driver for crash/signal recovery tests.

Runs a small campaign fleet over a tiny generated testbed, either
in-process (imported by tests to compute fault-free baselines) or as a
subprocess target for the ugly cases — ``kill -9`` mid-grid, SIGTERM
drains — where the orchestrator process itself must die::

    PYTHONPATH=src python -m tests.serve.fleet_driver run <dir> '<json>'
    PYTHONPATH=src python -m tests.serve.fleet_driver resume <dir> '<json>'

The driver writes ``result-<mode>.json`` into the fleet directory:
completion status plus per-campaign history fingerprints (step stats
and best reward), which tests compare bit-for-bit across fault-free,
chaos-soaked, killed-and-resumed, and drained-and-resumed runs.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.core import PoisonRec, PoisonRecConfig
from repro.data import DatasetSpec, generate_log, leave_one_out_split
from repro.recsys import BlackBoxEnvironment, RecommenderSystem
from repro.runtime import WorkerFaultPlan
from repro.runtime.checkpoint import load_campaign
from repro.serve import CampaignScheduler, CampaignSpec

RANKERS = ("itempop", "covisitation")


def build(spec):
    """Tiny-testbed builder: milliseconds to fit, deterministic."""
    data_spec = DatasetSpec(name="tiny", num_users=40, num_items=60,
                            num_samples=400, num_clusters=5)
    dataset = leave_one_out_split("tiny", generate_log(data_spec, seed=7))
    system = RecommenderSystem(dataset, spec.ranker, seed=spec.seed,
                               num_attackers=6)
    config = PoisonRecConfig.ci(num_attackers=6, trajectory_length=8,
                                samples_per_step=4, batch_size=4,
                                embedding_dim=8, seed=spec.seed)
    return BlackBoxEnvironment(system), config, 4


def fleet_specs(campaigns, steps, chaos_rate):
    """The soak fleet: alternating rankers, one seed per campaign."""
    return [CampaignSpec(name=f"c{i:02d}",
                         ranker=RANKERS[i % len(RANKERS)],
                         seed=i, steps=steps, chaos_rate=chaos_rate,
                         max_retries=6)
            for i in range(campaigns)]


def fingerprint(agent):
    return {"history": [[s.step, s.mean_reward, s.max_reward,
                         list(s.losses)]
                        for s in agent.result.history],
            "best": agent.result.best_reward}


def fingerprints(scheduler):
    """Per-campaign fingerprints, loading checkpoints where needed.

    Campaigns that completed in a *previous* process have no live agent
    after a resume; their full history lives in the checkpoint.
    """
    out = {}
    for name, record in scheduler.records.items():
        agent = record.agent
        if agent is None:
            env, config, _ = build(record.spec)
            agent = PoisonRec(env, config,
                              action_space=record.spec.action_space)
            load_campaign(agent, record.checkpoint_path)
        out[name] = fingerprint(agent)
    return out


def main(argv):
    mode, fleet_dir = argv[0], argv[1]
    options = json.loads(argv[2]) if len(argv) > 2 else {}
    worker_chaos = None
    if options.get("worker_kills") or options.get("worker_stalls"):
        worker_chaos = WorkerFaultPlan(
            kill_rate=options.get("worker_kills", 0.0),
            stall_rate=options.get("worker_stalls", 0.0),
            stall_seconds=2.0, seed=99)
    scheduler = CampaignScheduler(
        fleet_dir,
        workers=options.get("workers", 1),
        slice_steps=options.get("slice_steps", 2),
        stall_timeout=options.get("stall_timeout"),
        worker_chaos=worker_chaos,
        builder=build)
    if mode == "resume":
        scheduler.resume()
    else:
        for spec in fleet_specs(options.get("campaigns", 2),
                                options.get("steps", 4),
                                options.get("chaos", 0.0)):
            scheduler.submit(spec)
    step_delay = options.get("step_delay", 0.0)
    if step_delay:
        # Slow the fleet down so a parent test has a window to kill or
        # signal this process mid-grid (wall clock only — results are
        # unaffected).
        original = scheduler.telemetry.observe

        def slow_observe(name, stats):
            original(name, stats)
            time.sleep(step_delay)

        scheduler.telemetry.observe = slow_observe
    result = scheduler.run(handle_signals=True)
    payload = {
        "drained": result.drained,
        "completed": sorted(result.completed),
        "failed": sorted(result.failed),
        "tier": result.tier,
        "pool_crashes": result.pool_crashes,
        "fingerprints": fingerprints(scheduler),
    }
    path = pathlib.Path(fleet_dir) / f"result-{mode}.json"
    path.write_text(json.dumps(payload, sort_keys=True))
    return 1 if result.failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
