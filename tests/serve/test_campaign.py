"""CampaignSpec validation/serialization and CampaignRecord state."""

from __future__ import annotations

import pytest

from repro.serve import (CampaignRecord, CampaignSpec, CampaignStatus,
                         grid_specs)
from repro.serve.grid import DEFAULT_ACTION_SPACES, DEFAULT_RANKERS


class TestCampaignSpec:
    def test_json_roundtrip(self):
        spec = CampaignSpec(name="probe", ranker="pmf", seed=3, steps=7,
                            priority=2.0, chaos_rate=0.1)
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_unknown_json_fields_rejected(self):
        data = CampaignSpec(name="probe").to_json()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown field"):
            CampaignSpec.from_json(data)

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "a/b"},
        {"name": "a\\b"},
        {"name": "x", "priority": 0.0},
        {"name": "x", "chaos_rate": 1.5},
        {"name": "x", "steps": 0},
        {"name": "x", "max_retries": -1},
        {"name": "x", "failure_budget": -1},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CampaignSpec(**kwargs)


class TestCampaignRecord:
    def test_lifecycle_defaults(self, tmp_path):
        record = CampaignRecord(CampaignSpec(name="a", steps=5), tmp_path,
                                submit_order=0)
        assert record.status is CampaignStatus.PENDING
        assert not record.status.terminal
        assert record.steps_done == 0
        assert record.remaining == 5
        assert record.checkpoint_path == tmp_path / "a.npz"

    def test_terminal_statuses(self):
        assert CampaignStatus.COMPLETED.terminal
        assert CampaignStatus.FAILED.terminal
        assert not CampaignStatus.RUNNING.terminal
        assert not CampaignStatus.RESTARTING.terminal

    def test_fair_share_prefers_least_weighted_progress(self, tmp_path):
        class FakeAgent:
            def __init__(self, step):
                self.step = step

        low = CampaignRecord(CampaignSpec(name="low", steps=10), tmp_path, 0)
        high = CampaignRecord(
            CampaignSpec(name="high", steps=10, priority=2.0), tmp_path, 1)
        low.agent = FakeAgent(4)
        high.agent = FakeAgent(6)
        # 6 steps at priority 2 is *less* weighted progress than 4 at 1.
        assert high.fair_share_key < low.fair_share_key

    def test_fair_share_ties_break_by_submit_order(self, tmp_path):
        first = CampaignRecord(CampaignSpec(name="x", steps=3), tmp_path, 0)
        second = CampaignRecord(CampaignSpec(name="y", steps=3), tmp_path, 1)
        assert first.fair_share_key < second.fair_share_key


class TestGrid:
    def test_grid_covers_every_cell(self):
        specs = grid_specs(steps=3, chaos_rate=0.1)
        expected = len(DEFAULT_RANKERS) * len(DEFAULT_ACTION_SPACES)
        assert len(specs) == expected
        names = {spec.name for spec in specs}
        assert len(names) == expected
        assert all(spec.steps == 3 and spec.chaos_rate == 0.1
                   for spec in specs)

    def test_grid_names_encode_the_cell(self):
        specs = grid_specs(rankers=["pmf"], action_spaces=["plain"])
        assert specs[0].name == "pmf-plain"
        assert specs[0].ranker == "pmf"
        assert specs[0].action_space == "plain"

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            grid_specs(rankers=[])
