"""Scheduler journal: durability, torn-tail tolerance, replay."""

from __future__ import annotations

import json

import pytest

from repro.runtime.errors import CorruptCheckpointError
from repro.serve import SchedulerJournal, read_events, replay
from repro.serve.campaign import CampaignSpec


def write_fleet(path, events):
    with SchedulerJournal(path) as journal:
        for event in events:
            journal.append(event)


def submit_event(name, **kwargs):
    return {"event": "submit", "name": name,
            "spec": CampaignSpec(name=name, **kwargs).to_json()}


class TestJournalFile:
    def test_events_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        events = [submit_event("a", steps=3),
                  {"event": "status", "name": "a", "status": "running"},
                  {"event": "slice", "name": "a", "step": 2}]
        write_fleet(path, events)
        assert read_events(path) == events

    def test_append_requires_event_key(self, tmp_path):
        with SchedulerJournal(tmp_path / "j.jsonl") as journal:
            with pytest.raises(ValueError):
                journal.append({"name": "a"})

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [submit_event("a", steps=3)])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "slice", "name": "a", "st')
        events = read_events(path)
        assert [e["event"] for e in events] == ["submit"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [submit_event("a", steps=3)])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # garble a non-final line
        lines.append(json.dumps({"event": "drain"}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CorruptCheckpointError, match="garbled"):
            read_events(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"event": "drain"}\n')
        with pytest.raises(CorruptCheckpointError, match="format header"):
            read_events(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps(
            {"event": "format", "format": "poisonrec-fleet-journal",
             "version": 999}) + "\n")
        with pytest.raises(CorruptCheckpointError, match="unsupported"):
            read_events(path)


class TestReplay:
    def test_replay_folds_fleet_state(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [
            submit_event("a", steps=4),
            submit_event("b", steps=4),
            {"event": "status", "name": "a", "status": "running"},
            {"event": "slice", "name": "a", "step": 2},
            {"event": "status", "name": "b", "status": "running"},
            {"event": "slice", "name": "b", "step": 2},
            {"event": "slice", "name": "a", "step": 4},
            {"event": "status", "name": "a", "status": "completed",
             "step": 4},
            {"event": "tier", "tier": "serial", "workers": 1},
        ])
        ledger = replay(path)
        assert ledger.campaigns["a"].status == "completed"
        assert ledger.campaigns["a"].steps_done == 4
        assert ledger.campaigns["b"].status == "running"
        assert ledger.campaigns["b"].steps_done == 2
        assert ledger.tier == "serial"
        assert [entry.spec["name"] for entry in ledger.pending()] == ["b"]

    def test_replay_tracks_restarts_and_errors(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [
            submit_event("a", steps=4),
            {"event": "status", "name": "a", "status": "restarting",
             "restarts": 2, "error": "boom"},
            {"event": "status", "name": "a", "status": "failed",
             "error": "gave up", "restarts": 2},
        ])
        entry = replay(path).campaigns["a"]
        assert entry.status == "failed"
        assert entry.restarts == 2
        assert entry.error == "gave up"
        assert list(replay(path).pending()) == []

    def test_replay_records_drain_as_resumable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [submit_event("a", steps=4),
                           {"event": "drain", "reason": "sigterm"}])
        ledger = replay(path)
        assert ledger.drained
        assert [e.spec["name"] for e in ledger.pending()] == ["a"]

    def test_replay_rejects_events_for_unknown_campaigns(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [{"event": "slice", "name": "ghost", "step": 1}])
        with pytest.raises(CorruptCheckpointError, match="unsubmitted"):
            replay(path)

    def test_unknown_events_are_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_fleet(path, [submit_event("a", steps=4),
                           {"event": "future-extension", "payload": 1}])
        assert "a" in replay(path).campaigns
