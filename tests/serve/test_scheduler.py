"""CampaignScheduler: multiplexing, isolation, restarts, drains."""

from __future__ import annotations

import pytest

from repro.core import PoisonRec
from repro.runtime.errors import (CorruptCheckpointError,
                                  TransientEnvironmentError)
from repro.serve import (CampaignScheduler, CampaignSpec, CampaignStatus,
                         FleetTelemetry, RestartPolicy, replay)
from repro.serve.router import CampaignQueryClient, CampaignRouter

from .conftest import history_fingerprint

NO_SLEEP = staticmethod(lambda seconds: None)


def make_scheduler(directory, builder, **kwargs):
    kwargs.setdefault("sleep", lambda seconds: None)
    return CampaignScheduler(directory, builder=builder, **kwargs)


class TestRouter:
    def test_router_dispatches_by_name(self):
        class Env:
            def __init__(self, scale):
                self.scale = scale

            def attack(self, trajectories):
                return self.scale * len(trajectories)

        router = CampaignRouter()
        router.register("a", Env(10))
        router.register("b", Env(100))
        assert router.attack(("a", [[1], [2]])) == 20.0
        assert router.attack(("b", [[1], [2]])) == 200.0
        assert router.campaigns == ["a", "b"]
        with pytest.raises(ValueError):
            router.register("a", Env(1))

    def test_client_tags_batches(self):
        class FakePool:
            def __init__(self):
                self.batches = []

            def attack_many(self, sets, retry=None, rng=None, sleep=None):
                self.batches.append(sets)
                return [None] * len(sets)

        pool = FakePool()
        client = CampaignQueryClient(pool, "probe")
        client.attack_many([[[1, 2]], [[3, 4]]])
        assert pool.batches == [[("probe", [[1, 2]]), ("probe", [[3, 4]])]]
        assert client.queries == 2


class TestScheduling:
    def test_fleet_runs_every_campaign_to_completion(self, tmp_path,
                                                     tiny_builder):
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=2)
        scheduler.submit(CampaignSpec(name="a", steps=3, seed=0))
        scheduler.submit(CampaignSpec(name="b", steps=5, seed=1))
        result = scheduler.run()
        assert result.all_completed
        assert result.records["a"].steps_done == 3
        assert result.records["b"].steps_done == 5

    def test_duplicate_submission_rejected(self, tmp_path, tiny_builder):
        scheduler = make_scheduler(tmp_path, tiny_builder)
        scheduler.submit(CampaignSpec(name="a", steps=2))
        with pytest.raises(ValueError):
            scheduler.submit(CampaignSpec(name="a", steps=2))

    def test_campaigns_interleave_fairly(self, tmp_path, tiny_builder):
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=1)
        scheduler.submit(CampaignSpec(name="a", steps=3, seed=0))
        scheduler.submit(CampaignSpec(name="b", steps=3, seed=0))
        order = []
        original = scheduler._run_slice

        def spy(record):
            order.append(record.spec.name)
            return original(record)

        scheduler._run_slice = spy
        scheduler.run()
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_priority_weights_the_schedule(self, tmp_path, tiny_builder):
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=1)
        scheduler.submit(CampaignSpec(name="fast", steps=4, priority=2.0))
        scheduler.submit(CampaignSpec(name="slow", steps=4))
        order = []
        original = scheduler._run_slice

        def spy(record):
            order.append(record.spec.name)
            return original(record)

        scheduler._run_slice = spy
        scheduler.run()
        # The priority-2 campaign gets two slices per "slow" slice.
        assert order[:3] == ["fast", "slow", "fast"]

    def test_fleet_matches_standalone_agents(self, tmp_path, tiny_builder):
        """Multiplexed campaigns are bit-identical to solo runs."""
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=2)
        scheduler.submit(CampaignSpec(name="a", steps=4, seed=0))
        scheduler.submit(CampaignSpec(name="b", steps=4, seed=1))
        result = scheduler.run()
        assert result.all_completed

        for name, seed in (("a", 0), ("b", 1)):
            env, config, _ = tiny_builder(
                CampaignSpec(name=name, steps=4, seed=seed))
            solo = PoisonRec(env, config)
            solo.train(4)
            assert history_fingerprint(result.records[name]) == [
                (s.step, s.mean_reward, s.max_reward, tuple(s.losses))
                for s in solo.result.history]

    def test_spec_steps_default_to_builder_budget(self, tmp_path,
                                                  tiny_builder):
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=4)
        scheduler.submit(CampaignSpec(name="a"))
        result = scheduler.run()
        assert result.records["a"].steps_done == 4  # TINY_DEFAULT_STEPS

    def test_empty_fleet_returns_immediately(self, tmp_path, tiny_builder):
        result = make_scheduler(tmp_path, tiny_builder).run()
        assert result.records == {}
        assert result.all_completed


class TestIsolationAndRestarts:
    def poisoned_builder(self, tiny_builder, poison_name, error,
                         failures=1):
        """Wrap ``tiny_builder``; one campaign's env fails ``failures``
        times (across all its instances), then recovers."""
        state = {"left": failures}

        def build(spec):
            env, config, steps = tiny_builder(spec)
            if spec.name != poison_name:
                return env, config, steps

            class Poisoned:
                def __init__(self, inner):
                    self._env = inner

                def __getattr__(self, attr):
                    return getattr(self._env, attr)

                def attack(self, trajectories):
                    if state["left"] > 0:
                        state["left"] -= 1
                        raise error
                    return self._env.attack(trajectories)

            return Poisoned(env), config, steps

        return build

    def test_failed_campaign_is_isolated(self, tmp_path, tiny_builder):
        builder = self.poisoned_builder(
            tiny_builder, "bad", CorruptCheckpointError("poisoned"),
            failures=10 ** 6)
        scheduler = make_scheduler(tmp_path, builder, slice_steps=2)
        scheduler.submit(CampaignSpec(name="bad", steps=4, seed=0))
        scheduler.submit(CampaignSpec(name="good", steps=4, seed=1))
        result = scheduler.run()
        assert result.failed == ["bad"]
        assert result.records["bad"].status is CampaignStatus.FAILED
        assert "poisoned" in result.records["bad"].last_error
        # The sibling finished untouched.
        assert result.records["good"].status is CampaignStatus.COMPLETED
        assert result.records["good"].steps_done == 4

    def test_host_errors_are_not_swallowed(self, tmp_path, tiny_builder):
        """A sick host (MemoryError) stops the fleet loudly instead of
        masquerading as a campaign failure."""
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=2)
        scheduler.submit(CampaignSpec(name="a", steps=4))
        self.install_slice_failures(scheduler, "a",
                                    MemoryError("host is sick"), failures=1)
        with pytest.raises(MemoryError):
            scheduler.run()

    @staticmethod
    def install_slice_failures(scheduler, name, error, failures,
                               partial_steps=0):
        """Make ``name``'s next ``failures`` slices fail with ``error``.

        The error escapes ``agent.train`` exactly as a real mid-slice
        failure would (transient env errors inside the slice are
        absorbed by the inner retry/quarantine loop; supervision deals
        with the ones that escape).  ``partial_steps`` first runs that
        many real steps so the failure interrupts a slice mid-way.
        """
        counter = {"left": failures}
        original = scheduler._rebuild_agent

        def rebuild(record):
            original(record)
            if record.spec.name != name:
                return
            inner = record.agent.train

            def train(steps, **kwargs):
                if counter["left"] > 0:
                    counter["left"] -= 1
                    if partial_steps:
                        inner(min(partial_steps, steps), **kwargs)
                    raise error
                return inner(steps, **kwargs)

            record.agent.train = train

        scheduler._rebuild_agent = rebuild

    def test_transient_failure_restarts_from_checkpoint(self, tmp_path,
                                                        tiny_builder):
        scheduler = make_scheduler(
            tmp_path, tiny_builder, slice_steps=2,
            restart=RestartPolicy(base_delay=0.0))
        self.install_slice_failures(
            scheduler, "flaky", TransientEnvironmentError("hiccup"),
            failures=1)
        scheduler.submit(CampaignSpec(name="flaky", steps=4))
        result = scheduler.run()
        record = result.records["flaky"]
        assert record.status is CampaignStatus.COMPLETED
        assert record.restarts == 1
        assert record.steps_done == 4
        # The restart is visible in the journal.
        entry = replay(tmp_path / "journal.jsonl").campaigns["flaky"]
        assert entry.restarts == 1
        assert entry.status == "completed"

    def test_restart_allowance_exhaustion_fails_campaign(self, tmp_path,
                                                         tiny_builder):
        scheduler = make_scheduler(
            tmp_path, tiny_builder, slice_steps=2,
            restart=RestartPolicy(base_delay=0.0))
        self.install_slice_failures(
            scheduler, "flaky", TransientEnvironmentError("hiccup"),
            failures=10 ** 6)
        scheduler.submit(CampaignSpec(name="flaky", steps=4,
                                      max_restarts=2))
        result = scheduler.run()
        record = result.records["flaky"]
        assert record.status is CampaignStatus.FAILED
        assert record.restarts == 2

    def test_restart_backoff_delays_are_exponential(self, tmp_path,
                                                    tiny_builder):
        delays = []
        scheduler = make_scheduler(
            tmp_path, tiny_builder, slice_steps=2,
            restart=RestartPolicy(base_delay=0.5, multiplier=2.0),
            sleep=delays.append)
        self.install_slice_failures(
            scheduler, "flaky", TransientEnvironmentError("hiccup"),
            failures=2)
        scheduler.submit(CampaignSpec(name="flaky", steps=2,
                                      max_restarts=3))
        result = scheduler.run()
        assert result.records["flaky"].status is CampaignStatus.COMPLETED
        backoffs = [d for d in delays if d > 0.1]
        # The awaited remainder is the scheduled delay minus the loop's
        # own (tiny) elapsed time.
        assert len(backoffs) >= 2
        assert 0.4 < backoffs[0] <= 0.5
        assert 0.9 < backoffs[1] <= 1.0

    def test_restarted_campaign_matches_unfailed_run(self, tmp_path,
                                                     tiny_builder):
        """A mid-slice failure + checkpointed restart reproduces the
        failure-free history bit-for-bit."""
        baseline = make_scheduler(tmp_path / "clean", tiny_builder,
                                  slice_steps=2)
        baseline.submit(CampaignSpec(name="c", steps=4, seed=0))
        clean = baseline.run().records["c"]

        scheduler = make_scheduler(
            tmp_path / "flaky", tiny_builder, slice_steps=2,
            restart=RestartPolicy(base_delay=0.0))
        self.install_slice_failures(
            scheduler, "c", TransientEnvironmentError("hiccup"),
            failures=1, partial_steps=1)
        scheduler.submit(CampaignSpec(name="c", steps=4, seed=0))
        record = scheduler.run().records["c"]
        assert record.status is CampaignStatus.COMPLETED
        assert record.restarts == 1
        assert history_fingerprint(record) == history_fingerprint(clean)


class TestDrainAndResume:
    def drain_after(self, scheduler, steps):
        seen = {"count": 0}
        original = scheduler.telemetry.observe

        def observe(name, stats):
            original(name, stats)
            seen["count"] += 1
            if seen["count"] == steps:
                scheduler.drain.request("test")

        scheduler.telemetry.observe = observe

    def test_drain_checkpoints_and_resume_is_bit_identical(self, tmp_path,
                                                           tiny_builder):
        baseline = make_scheduler(tmp_path / "clean", tiny_builder,
                                  slice_steps=2)
        baseline.submit(CampaignSpec(name="a", steps=4, seed=0))
        baseline.submit(CampaignSpec(name="b", steps=4, seed=1))
        clean = baseline.run().records

        fleet_dir = tmp_path / "fleet"
        first = make_scheduler(fleet_dir, tiny_builder, slice_steps=2)
        first.submit(CampaignSpec(name="a", steps=4, seed=0))
        first.submit(CampaignSpec(name="b", steps=4, seed=1))
        self.drain_after(first, 3)  # mid-slice for campaign b
        interrupted = first.run()
        assert interrupted.drained
        assert not interrupted.records["a"].status.terminal
        assert replay(fleet_dir / "journal.jsonl").drained

        second = make_scheduler(fleet_dir, tiny_builder, slice_steps=2)
        second.resume()
        resumed = second.run()
        assert resumed.all_completed
        for name in ("a", "b"):
            assert (history_fingerprint(resumed.records[name])
                    == history_fingerprint(clean[name]))

    def test_resume_skips_terminal_campaigns(self, tmp_path, tiny_builder):
        fleet_dir = tmp_path / "fleet"
        first = make_scheduler(fleet_dir, tiny_builder, slice_steps=4)
        first.submit(CampaignSpec(name="done", steps=2, seed=0))
        first.run()

        second = make_scheduler(fleet_dir, tiny_builder, slice_steps=4)
        second.resume()
        record = second.records["done"]
        assert record.status is CampaignStatus.COMPLETED
        builds = []
        original = second.builder

        def counting_builder(spec):
            builds.append(spec.name)
            return original(spec)

        second.builder = counting_builder
        result = second.run()
        assert result.all_completed
        assert builds == []  # nothing rebuilt, nothing re-run

    def test_resume_accepts_new_submissions(self, tmp_path, tiny_builder):
        fleet_dir = tmp_path / "fleet"
        first = make_scheduler(fleet_dir, tiny_builder, slice_steps=2)
        first.submit(CampaignSpec(name="a", steps=2, seed=0))
        first.run()

        second = make_scheduler(fleet_dir, tiny_builder, slice_steps=2)
        second.resume()
        second.submit(CampaignSpec(name="late", steps=2, seed=1))
        result = second.run()
        assert result.all_completed
        assert result.records["late"].steps_done == 2


class TestTelemetry:
    def test_fleet_telemetry_accumulates(self, tmp_path, tiny_builder):
        telemetry = FleetTelemetry()
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=2,
                                   telemetry=telemetry)
        scheduler.submit(CampaignSpec(name="a", steps=3, seed=0))
        result = scheduler.run()
        entry = telemetry.campaigns["a"]
        assert entry.steps == 3
        assert entry.best_reward == result.records["a"].agent.result \
            .best_reward
        table = telemetry.render_table(result.records)
        assert "completed" in table and "a" in table

    def test_profiler_rollup_covers_serial_queries(self, tmp_path,
                                                   tiny_builder):
        telemetry = FleetTelemetry()
        scheduler = make_scheduler(tmp_path, tiny_builder, slice_steps=2,
                                   telemetry=telemetry)
        scheduler.submit(CampaignSpec(name="a", steps=2, seed=0))
        scheduler.run()
        totals = telemetry.phase_totals()
        # Serial tier: restore/retrain/score all happen in-process.
        assert totals, "expected profiler phases at the serial tier"
        assert all(seconds >= 0.0 for seconds in totals.values())
