"""Supervision primitives: classification, budgets, backoff, drains."""

from __future__ import annotations

import pytest

from repro.runtime.errors import (CampaignDivergenceError,
                                  CorruptCheckpointError,
                                  FailureBudgetExhausted,
                                  RetriesExhaustedError,
                                  TransientEnvironmentError)
from repro.serve import (CampaignRecord, CampaignSpec, CampaignSupervisor,
                         DegradationController, DrainController,
                         RestartPolicy)


class TestRestartPolicy:
    def test_exponential_backoff(self):
        policy = RestartPolicy(base_delay=0.5, multiplier=2.0, max_delay=3.0)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 2.0
        assert policy.delay(4) == 3.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RestartPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RestartPolicy().delay(0)


class TestClassification:
    def make_record(self, tmp_path, max_restarts=2):
        return CampaignRecord(
            CampaignSpec(name="a", steps=4, max_restarts=max_restarts),
            tmp_path, 0)

    def test_transient_errors_restart(self, tmp_path):
        supervisor = CampaignSupervisor()
        record = self.make_record(tmp_path)
        assert supervisor.classify(
            record, TransientEnvironmentError("blip")) == "restart"
        assert supervisor.classify(
            record, RetriesExhaustedError("gone", attempts=4)) == "restart"

    def test_restart_allowance_is_finite(self, tmp_path):
        supervisor = CampaignSupervisor()
        record = self.make_record(tmp_path, max_restarts=1)
        record.restarts = 1
        assert supervisor.classify(
            record, TransientEnvironmentError("blip")) == "fail"

    @pytest.mark.parametrize("error", [
        FailureBudgetExhausted("spent"),
        CampaignDivergenceError("diverged"),
        CorruptCheckpointError("bad archive"),
        RuntimeError("unclassified"),
    ])
    def test_fatal_and_unknown_errors_fail(self, tmp_path, error):
        supervisor = CampaignSupervisor()
        assert supervisor.classify(self.make_record(tmp_path),
                                   error) == "fail"


class TestQuarantineBudget:
    class FakeStats:
        def __init__(self, quarantined):
            self.quarantined = quarantined

    class FakeAgent:
        def __init__(self, quarantines):
            class Result:
                history = [TestQuarantineBudget.FakeStats(q)
                           for q in quarantines]
            self.result = Result()

    def test_budget_spans_slices(self, tmp_path):
        record = CampaignRecord(
            CampaignSpec(name="a", steps=4, failure_budget=3), tmp_path, 0)
        supervisor = CampaignSupervisor()
        record.agent = self.FakeAgent([1, 1])
        supervisor.charge_quarantines(record)
        assert record.charged_quarantines == 2
        # The same history is not charged twice.
        supervisor.charge_quarantines(record)
        assert record.budget.consumed == 2
        record.agent = self.FakeAgent([1, 1, 1, 1])
        with pytest.raises(FailureBudgetExhausted):
            supervisor.charge_quarantines(record)


class TestDrainController:
    def test_request_is_sticky_and_keeps_first_reason(self):
        drain = DrainController()
        assert not drain.requested
        drain.request("sigterm")
        drain.request("sigint")
        assert drain.requested
        assert drain.reason == "sigterm"

    def test_install_and_uninstall_roundtrip(self):
        import signal
        drain = DrainController()
        previous = signal.getsignal(signal.SIGTERM)
        drain.install(signals=(signal.SIGTERM,))
        assert signal.getsignal(signal.SIGTERM) is not previous
        drain.uninstall()
        assert signal.getsignal(signal.SIGTERM) is previous


class TestDegradation:
    class FakePool:
        def __init__(self, crashes=0, broken=False):
            self.crashes = crashes
            self.broken = broken

    def test_starts_serial_for_one_worker(self):
        assert DegradationController(1).tier == "serial"
        assert DegradationController(4).tier == "pooled"

    def test_crash_storm_halves_workers(self):
        controller = DegradationController(8, crash_storm=4)
        assert controller.assess(self.FakePool(crashes=3)) is None
        assert controller.assess(self.FakePool(crashes=7)) == "reduced"
        assert controller.workers == 4

    def test_broken_pool_downgrades(self):
        controller = DegradationController(4)
        assert controller.assess(self.FakePool(broken=True)) == "reduced"
        assert controller.workers == 2

    def test_reduction_bottoms_out_at_serial(self):
        controller = DegradationController(2, crash_storm=1)
        assert controller.assess(self.FakePool(crashes=1)) == "serial"
        assert controller.workers == 1
        assert controller.serial
        # Serial is terminal: nothing further to assess.
        assert controller.assess(None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationController(4, min_workers=1)
        with pytest.raises(ValueError):
            DegradationController(4, crash_storm=0)
