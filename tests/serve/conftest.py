"""Fixtures for the serving layer: tiny testbeds and builders."""

from __future__ import annotations

import pytest

from repro.core import PoisonRecConfig
from repro.recsys import BlackBoxEnvironment, RecommenderSystem

#: Steps a tiny campaign owes when its spec defers to the scale default.
TINY_DEFAULT_STEPS = 4


@pytest.fixture(scope="session")
def tiny_systems(tiny_dataset):
    """Memoized ``(ranker, seed) -> RecommenderSystem`` factory.

    Fitting a ranker dominates scheduler-test runtime; campaigns that
    share a testbed share the fitted system (queries restore its full
    clean state, so sharing is observationally safe).
    """
    cache = {}

    def get(ranker: str, seed: int) -> RecommenderSystem:
        key = (ranker, seed)
        if key not in cache:
            cache[key] = RecommenderSystem(tiny_dataset, ranker, seed=seed,
                                           num_attackers=6)
        return cache[key]

    return get


@pytest.fixture()
def tiny_builder(tiny_systems):
    """A fast ``CampaignScheduler`` builder over the tiny dataset."""

    def build(spec):
        system = tiny_systems(spec.ranker, spec.seed)
        system.reset(force=True)
        env = BlackBoxEnvironment(system)
        config = PoisonRecConfig.ci(num_attackers=6, trajectory_length=8,
                                    samples_per_step=4, batch_size=4,
                                    embedding_dim=8, seed=spec.seed)
        return env, config, TINY_DEFAULT_STEPS

    return build


def history_fingerprint(record):
    """Bit-comparable view of one campaign's training history."""
    return [(stats.step, stats.mean_reward, stats.max_reward,
             tuple(stats.losses)) for stats in record.agent.result.history]
