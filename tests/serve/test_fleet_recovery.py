"""Orchestrator-death recovery: kill -9 mid-grid, SIGTERM drains, soak.

These tests drive :mod:`tests.serve.fleet_driver` as a subprocess so
the *orchestrator process itself* can be killed or signalled, then
assert the resumed fleet reproduces the fault-free run bit-for-bit —
the PR's acceptance criteria.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from . import fleet_driver

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

HAS_FORK = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK,
                                reason="fork start method unavailable")


def driver_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{current}" if current else src
    return env


def spawn_driver(mode, fleet_dir, options):
    return subprocess.Popen(
        [sys.executable, "-m", "tests.serve.fleet_driver", mode,
         str(fleet_dir), json.dumps(options)],
        cwd=REPO_ROOT, env=driver_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def run_driver(mode, fleet_dir, options):
    process = spawn_driver(mode, fleet_dir, options)
    assert process.wait(timeout=300) == 0
    return read_result(fleet_dir, mode)


def read_result(fleet_dir, mode):
    return json.loads(
        (pathlib.Path(fleet_dir) / f"result-{mode}.json").read_text())


def wait_for_slices(journal_path, count, timeout=120.0):
    """Block until the fleet journal records ``count`` slice events."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal_path.exists():
            slices = journal_path.read_text().count('"event": "slice"')
            if slices >= count:
                return
        time.sleep(0.02)
    raise AssertionError(
        f"journal never reached {count} slice events within {timeout}s")


def baseline_fingerprints(tmp_path, options):
    """Fault-free serial fingerprints for the same fleet, in-process."""
    clean = dict(options)
    for key in ("chaos", "worker_kills", "worker_stalls", "stall_timeout",
                "step_delay"):
        clean.pop(key, None)
    clean["workers"] = 1
    directory = tmp_path / "baseline"
    assert fleet_driver.main(["run", str(directory),
                              json.dumps(clean)]) == 0
    return read_result(directory, "run")["fingerprints"]


class TestKillNineRecovery:
    def test_kill_nine_mid_grid_resumes_bit_identically(self, tmp_path):
        """Satellite 3: SIGKILL the scheduler mid-grid; the resumed
        fleet's histories match an uninterrupted run exactly."""
        options = {"campaigns": 3, "steps": 6, "slice_steps": 1,
                   "step_delay": 0.2}
        clean = baseline_fingerprints(tmp_path, options)

        fleet_dir = tmp_path / "fleet"
        victim = spawn_driver("run", fleet_dir, options)
        try:
            wait_for_slices(fleet_dir / "journal.jsonl", 3)
            os.kill(victim.pid, signal.SIGKILL)
            assert victim.wait(timeout=60) == -signal.SIGKILL
        finally:
            if victim.poll() is None:
                victim.kill()
        # The victim died without writing a result.
        assert not (fleet_dir / "result-run.json").exists()

        resumed = run_driver("resume", fleet_dir,
                             {"slice_steps": 1})
        assert resumed["completed"] == ["c00", "c01", "c02"]
        assert resumed["failed"] == []
        assert resumed["fingerprints"] == clean


@needs_fork
class TestChaosSoak:
    """The acceptance soak: 8 campaigns, worker kills + stalls +
    transient environment faults, over a 2-worker pool."""

    SOAK = {"campaigns": 8, "steps": 3, "slice_steps": 2, "workers": 2,
            "chaos": 0.1, "worker_kills": 0.15, "worker_stalls": 0.08,
            "stall_timeout": 0.3}

    def test_soak_completes_bit_identical_to_fault_free_serial(
            self, tmp_path):
        clean = baseline_fingerprints(tmp_path, self.SOAK)
        soaked = run_driver("run", tmp_path / "fleet", self.SOAK)
        assert soaked["failed"] == []
        assert len(soaked["completed"]) == 8
        assert soaked["fingerprints"] == clean

    def test_sigterm_mid_soak_drains_and_resumes_bit_identically(
            self, tmp_path):
        options = dict(self.SOAK, step_delay=0.2)
        clean = baseline_fingerprints(tmp_path, self.SOAK)

        fleet_dir = tmp_path / "fleet"
        victim = spawn_driver("run", fleet_dir, options)
        try:
            wait_for_slices(fleet_dir / "journal.jsonl", 3)
            os.kill(victim.pid, signal.SIGTERM)
            # A drain is a clean exit: in-flight queries finish, every
            # campaign checkpoints, exit code 0.
            assert victim.wait(timeout=120) == 0
        finally:
            if victim.poll() is None:
                victim.kill()
        drained = read_result(fleet_dir, "run")
        assert drained["drained"]
        journal = (fleet_dir / "journal.jsonl").read_text()
        assert '"event": "drain"' in journal

        resumed = run_driver("resume", fleet_dir, self.SOAK)
        assert resumed["failed"] == []
        assert len(resumed["completed"]) == 8
        assert resumed["fingerprints"] == clean
