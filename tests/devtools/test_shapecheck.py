"""Shapecheck: shape algebra, tracer, contracts, CLI and mutation tests."""

import inspect
import importlib
import pkgutil

import numpy as np
import pytest

import repro
from repro.devtools.shapecheck import (BOOL, ContractError, Dim, FLOAT64,
                                       INT64, ShapeError, SymTensor,
                                       broadcast_shapes, checked_call,
                                       concat_shapes, matmul_shape,
                                       parse_spec, reshape_shape,
                                       run_all, run_checks, stack_shapes,
                                       sym_input, symbolic_trace)
from repro.devtools.shapecheck import cli as shapecheck_cli
from repro.nn import Dense, Tensor
from repro.nn import functional as F
from repro.nn.spec import SPEC_ATTRIBUTE, get_shape_spec, shape_spec

B = Dim("B")
T = Dim("T")


class TestShapeAlgebra:
    def test_broadcast_symbolic_against_one(self):
        assert broadcast_shapes((B, 1), (B, 5)) == (B, 5)
        assert broadcast_shapes((3,), (B, 3)) == (B, 3)

    def test_broadcast_symbolic_against_concrete_fails(self):
        with pytest.raises(ShapeError, match="broadcast"):
            broadcast_shapes((B, 4), (3, 4))

    def test_matmul_batched(self):
        assert matmul_shape((B, 3, 4), (4, 5)) == (B, 3, 5)

    def test_matmul_inner_mismatch(self):
        with pytest.raises(ShapeError, match="inner dims"):
            matmul_shape((B, 4), (5, 6))

    def test_concat_sums_axis_symbolically(self):
        out = concat_shapes([(B, 3), (T, 3)], axis=0)
        assert out == (Dim("B+T"), 3)
        assert concat_shapes([(B, 3), (B, 2)], axis=1) == (B, 5)

    def test_concat_non_axis_mismatch(self):
        with pytest.raises(ShapeError):
            concat_shapes([(B, 3), (B, 4)], axis=0)

    def test_stack_requires_identical_shapes(self):
        assert stack_shapes([(B, 3), (B, 3)], axis=0) == (2, B, 3)
        with pytest.raises(ShapeError):
            stack_shapes([(B, 3), (B, 4)], axis=0)

    def test_reshape_concrete(self):
        assert reshape_shape((3, 5), (5, 3)) == (5, 3)
        assert reshape_shape((3, 5), (-1,)) == (15,)

    def test_reshape_minus_one_absorbs_symbolic_dim(self):
        assert reshape_shape((B, 4), (-1, 4)) == (B, 4)

    def test_reshape_element_count_mismatch(self):
        with pytest.raises(ShapeError):
            reshape_shape((3, 5), (4, 4))


class TestSymTensor:
    def test_arithmetic_broadcasts_and_promotes(self):
        a = sym_input(("B", 4))
        b = sym_input((4,), INT64)
        out = a + b
        assert out.shape == (B, 4) and out.dtype == FLOAT64

    def test_division_forces_float(self):
        a = sym_input(("B",), INT64)
        assert (a / 2).dtype == FLOAT64

    def test_comparison_yields_bool(self):
        a = sym_input(("B", 3))
        assert (a > 0.0).dtype == BOOL

    def test_matmul_mismatch_carries_op_chain(self):
        a = sym_input(("B", 4), name="x")
        with pytest.raises(ShapeError) as excinfo:
            _ = F is None or a @ sym_input((5, 6))
        assert "matmul" in str(excinfo.value)
        assert "operand" in str(excinfo.value)

    def test_numpy_materialization_fails_loudly(self):
        with pytest.raises(ShapeError, match="symbolic"):
            sym_input(("B",)).numpy()

    def test_getitem_slicing(self):
        a = sym_input(("B", 6))
        assert a[:, :3].shape == (B, 3)
        assert a[0].shape == (6,)


class TestTracer:
    def test_dense_forward_is_symbolic(self):
        dense = Dense(4, 7, np.random.default_rng(0))
        with symbolic_trace():
            out = dense(SymTensor((B, 4)))
        assert isinstance(out, SymTensor)
        assert out.shape == (B, 7)

    def test_functional_ops_restored_after_trace(self):
        original = F.relu
        with symbolic_trace():
            assert F.relu is not original
        assert F.relu is original

    def test_tensor_construction_survives_trace_exit(self):
        # Regression: the Tensor.__new__ passthrough must stay benign
        # outside a trace — plain construction broke when the patched
        # __new__ was deleted instead of neutralized.
        with symbolic_trace():
            pass
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert (F.relu(t) + 1.0).numpy().shape == (2, 3)

    def test_trace_is_not_reentrant(self):
        with symbolic_trace():
            with pytest.raises(RuntimeError, match="reentrant"):
                with symbolic_trace():
                    pass


class TestContracts:
    def test_parse_spec_shapes_and_tuples(self):
        arg_terms, result_terms = parse_spec(
            "(B, T), ((B, H), (B, H)) -> (B, H)")
        assert len(arg_terms) == 2 and len(result_terms) == 1

    def test_parse_spec_requires_arrow(self):
        with pytest.raises(ContractError):
            parse_spec("(B, T)")

    def test_checked_call_verifies_and_returns(self):
        dense = Dense(4, 7, np.random.default_rng(0))
        out = checked_call(dense, "__call__", Tensor(np.zeros((2, 4))))
        assert out.shape == (2, 7)

    def test_instance_constant_mismatch_detected(self):
        dense = Dense(4, 7, np.random.default_rng(0))
        with pytest.raises(ContractError, match="in_dim"):
            with symbolic_trace():
                checked_call(dense, "__call__", sym_input(("B", 5)))

    def test_symbol_unification_failure(self):
        class Pair:
            @shape_spec("(B, D), (B, D) -> (B,)")
            def combine(self, a, b):
                return SymTensor((a.shape[0],))

        with pytest.raises(ContractError, match="'D'"):
            checked_call(Pair(), "combine", sym_input(("B", 3)),
                         sym_input(("B", 4)))

    def test_wildcard_and_trailing_defaults(self):
        class Thing:
            @shape_spec("(N,), _ -> (N,)")
            def go(self, a, extra=None):
                return SymTensor((a.shape[0],))

        out = checked_call(Thing(), "go", sym_input(("N",)))
        assert out.shape == (Dim("N"),)


def _iter_repo_specs():
    """Every ``@shape_spec`` attached anywhere under the repro package."""
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        module = importlib.import_module(info.name)
        for _, member in inspect.getmembers(module):
            if inspect.isclass(member) and member.__module__ == info.name:
                for _, fn in inspect.getmembers(member, inspect.isfunction):
                    spec = getattr(fn, SPEC_ATTRIBUTE, None)
                    if spec is not None:
                        yield f"{info.name}.{member.__qualname__}", spec


def test_every_attached_spec_parses():
    specs = list(_iter_repo_specs())
    assert len(specs) >= 20  # nn layers + policy + all 8 rankers
    for owner, spec in specs:
        parse_spec(spec)  # raises ContractError on a malformed contract


class TestCLIAndMutation:
    def test_run_all_is_clean(self):
        results = run_all()
        assert len(results) >= 23
        failures = [r for r in results if not r.ok]
        assert failures == []

    def test_cli_exit_zero_when_clean(self, capsys):
        assert shapecheck_cli.main([]) == 0
        assert "clean" in capsys.readouterr().err

    def _mutated_dense_check(self):
        dense = Dense(4, 7, np.random.default_rng(0))
        dense.weight = Tensor(dense.weight.data.T.copy(),
                              requires_grad=True, name="dense.weight")

        def check():
            with symbolic_trace():
                checked_call(dense, "__call__", sym_input(("B", 4)))
        return check

    def _expected_anchor(self):
        lines, start = inspect.getsourcelines(Dense.__call__)
        offset = next(i for i, line in enumerate(lines)
                      if "x @ self.weight" in line)
        return f"layers.py:{start + offset}"

    def test_mutated_weight_reported_with_file_and_line(self):
        results = run_checks([("nn.Dense[mutated]",
                               self._mutated_dense_check())])
        assert len(results) == 1 and not results[0].ok
        detail = results[0].detail
        assert "ShapeError" in detail
        assert "inner dims" in detail
        assert self._expected_anchor() in detail

    def test_mutated_weight_fails_cli_with_nonzero_exit(self, capsys,
                                                        monkeypatch):
        monkeypatch.setattr(
            shapecheck_cli, "run_all",
            lambda: run_checks([("nn.Dense[mutated]",
                                 self._mutated_dense_check())]))
        assert shapecheck_cli.main([]) == 1
        captured = capsys.readouterr()
        assert "FAIL nn.Dense[mutated]" in captured.out
        assert self._expected_anchor() in captured.out
