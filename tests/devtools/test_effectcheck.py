"""Effectcheck: cross-procedural purity/effect analysis of ``repro``.

Three layers of coverage:

* the repo-clean gate — the real source tree must produce zero
  diagnostics with zero suppressions (this is the CI contract),
* the mutation test — a hidden in-place write planted inside
  ``ItemPop.score`` must be reported at its exact file:line, both
  directly and through the cross-procedural call chain from
  ``RecommenderSystem.recommend``, and
* unit tests for the analyzer internals: effect summaries, contract
  inheritance, suppression comments and CLI output formats.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.effectcheck import analyze_package
from repro.devtools.effectcheck.cli import (_plant_mutation, default_root,
                                            main, run_self_test)

SRC_ROOT = default_root()


@pytest.fixture(scope="module")
def clean_analysis():
    """One shared analysis of the real tree (indexing is the slow part)."""
    return analyze_package(SRC_ROOT)


@pytest.fixture(scope="module")
def mutated_tree(tmp_path_factory):
    """A doctored copy of ``src/repro`` with a hidden write in score."""
    root = tmp_path_factory.mktemp("mutated") / "repro"
    shutil.copytree(SRC_ROOT, root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    planted_path, planted_line = _plant_mutation(root)
    return root, planted_path, planted_line


# ----------------------------------------------------------------------
# Repo-clean gate
# ----------------------------------------------------------------------
class TestCleanTree:
    def test_no_diagnostics(self, clean_analysis):
        _, _, diagnostics = clean_analysis
        assert diagnostics == []

    def test_no_suppression_comments_in_src(self):
        # The checker's own module documents the marker; everything
        # else in src/ must pass with zero suppressions.
        checker_dir = SRC_ROOT / "devtools" / "effectcheck"
        offenders = [path for path in SRC_ROOT.rglob("*.py")
                     if checker_dir not in path.parents
                     and "effectcheck: disable" in
                     path.read_text(encoding="utf-8")]
        assert offenders == []

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main(["--root", str(SRC_ROOT)]) == 0
        assert capsys.readouterr().out == ""


# ----------------------------------------------------------------------
# Mutation test: exact-line, cross-procedural detection
# ----------------------------------------------------------------------
class TestPlantedMutation:
    def test_reported_at_exact_line(self, mutated_tree):
        root, planted_path, planted_line = mutated_tree
        _, _, diagnostics = analyze_package(root)
        hits = [d for d in diagnostics
                if d.rule == "REP012" and d.line == planted_line
                and Path(d.path) == planted_path]
        assert hits, [f"{d.path}:{d.line} {d.rule}" for d in diagnostics]
        assert any("counts" in d.message for d in hits)

    def test_direct_and_chained_diagnostics(self, mutated_tree):
        root, _, planted_line = mutated_tree
        _, _, diagnostics = analyze_package(root)
        at_line = [d for d in diagnostics if d.line == planted_line]
        assert any(d.chain == () for d in at_line)
        chained = [d for d in at_line if d.chain]
        assert any("recommend" in frame for d in chained
                   for frame in d.chain)

    def test_cli_exit_one_and_text_output(self, mutated_tree, capsys):
        root, planted_path, planted_line = mutated_tree
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert f"{planted_path.name}:{planted_line}" in out.replace(
            str(planted_path), planted_path.name)
        assert "REP012" in out

    def test_json_format(self, mutated_tree, capsys):
        root, _, planted_line = mutated_tree
        assert main(["--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"].get("REP012", 0) >= 1
        assert any(d["line"] == planted_line
                   for d in payload["diagnostics"])

    def test_suppression_comment_silences_planted_line(self, tmp_path):
        root = tmp_path / "repro"
        shutil.copytree(SRC_ROOT, root,
                        ignore=shutil.ignore_patterns("__pycache__"))
        planted_path, planted_line = _plant_mutation(root)
        lines = planted_path.read_text(encoding="utf-8").splitlines(
            keepends=True)
        idx = planted_line - 1
        lines[idx] = lines[idx].rstrip("\n") \
            + "  # effectcheck: disable=REP012\n"
        planted_path.write_text("".join(lines), encoding="utf-8")
        _, _, diagnostics = analyze_package(root)
        assert not [d for d in diagnostics if d.line == planted_line]

    def test_self_test_passes(self, capsys):
        assert run_self_test() == 0


# ----------------------------------------------------------------------
# Analyzer internals
# ----------------------------------------------------------------------
class TestSummaries:
    def test_score_paths_are_effect_free(self, clean_analysis):
        _, summaries, _ = clean_analysis
        for key in ("repro.recsys.itempop.ItemPop.score",
                    "repro.recsys.pmf.PMF.score_batch",
                    "repro.recsys.system.RecommenderSystem.recommend"):
            assert not summaries[key].effects, key

    def test_poison_update_writes_propagate_cross_procedurally(
            self, clean_analysis):
        # PMF.poison_update only touches its factor tables indirectly,
        # through _sgd_epochs -> _apply_accumulated; the summary must
        # still attribute the writes to self.
        _, summaries, _ = clean_analysis
        summary = summaries["repro.recsys.pmf.PMF.poison_update"]
        attrs = {e.root[1] for e in summary.effects.values()
                 if e.kind == "write" and e.root[0] == "self"}
        assert {"user_factors", "item_factors"} <= attrs
        chained = [e for e in summary.effects.values() if e.chain]
        assert chained, "expected at least one inherited (chained) effect"

    def test_rng_draws_are_tracked(self, clean_analysis):
        _, summaries, _ = clean_analysis
        summary = summaries["repro.recsys.pmf.PMF.poison_update"]
        assert any(e.kind == "rng" for e in summary.effects.values())


class TestContracts:
    def test_spec_inherited_through_mro(self, clean_analysis):
        # ItemPop declares @mutates("counts") on poison_update itself,
        # but score_batch on PMF inherits @pure via the base protocol
        # when undecorated subclasses appear; find_spec must walk the
        # MRO rather than only the defining class.
        index, _, _ = clean_analysis
        cls = next(c for c in index.classes.values()
                   if c.name == "ItemPop")
        spec = index.find_spec(cls, "restore")
        assert spec is not None and "*" in spec

    def test_protocol_methods_all_declared(self, clean_analysis):
        # The missing-contract half of REP012: every concrete ranker's
        # fit/score/poison_update/... must carry @pure or @mutates.
        index, _, _ = clean_analysis
        rankers = [c for c in index.classes.values()
                   if any(m in c.methods for m in ("fit",))
                   and index.find_spec(c, "fit") is not None]
        assert len(rankers) >= 8


class TestModuleRunner:
    def test_python_dash_m_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.effectcheck",
             "--root", str(SRC_ROOT), "--statistics"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC_ROOT.parent), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stderr
