"""Shared analyzer infrastructure (``repro.devtools.common``).

The suppression parser, statement-span logic, JSON payload shape and
exit-code convention are shared by all four analyzer CLIs, so a
regression here would silently change every tool at once.
"""

import ast
import json

from repro.devtools.common import (EXIT_CLEAN, EXIT_FINDINGS,
                                   EXIT_INTERNAL, SuppressionFilter,
                                   exit_code, json_report,
                                   rule_statistics, stmt_spans,
                                   suppressed_rules, suppression_pattern)


class _Diag:
    def __init__(self, rule):
        self.rule = rule


class TestSuppressionParsing:
    def test_targeted_ids(self):
        pattern = suppression_pattern("sometool")
        got = suppressed_rules("x = 1  # sometool: disable=REP001, rep002",
                               pattern)
        assert got == frozenset({"REP001", "REP002"})

    def test_disable_all(self):
        pattern = suppression_pattern("sometool")
        assert suppressed_rules("x  # sometool: disable", pattern) \
            == frozenset()

    def test_other_tool_comment_ignored(self):
        pattern = suppression_pattern("sometool")
        assert suppressed_rules("x  # othertool: disable=REP001",
                                pattern) is None


class TestSuppressionFilter:
    SOURCE = ("def f():\n"
              "    value = call(\n"
              "        1,\n"
              "    )  # mytool: disable=REP001\n")

    def _filter(self):
        return SuppressionFilter("mytool", self.SOURCE.splitlines(),
                                 ast.parse(self.SOURCE))

    def test_comment_on_closing_line_covers_statement(self):
        # The diagnostic anchors on the call's first line; the comment
        # sits on the closing paren of the same (innermost) statement.
        assert self._filter().covers("REP001", 2)

    def test_wrong_rule_id_does_not_cover(self):
        assert not self._filter().covers("REP999", 2)

    def test_def_line_not_covered_by_body_comment(self):
        # A compound statement's span stops before its first body
        # statement, so the def line itself stays uncovered.
        assert not self._filter().covers("REP001", 1)

    def test_without_tree_only_own_line_is_consulted(self):
        lines = self.SOURCE.splitlines()
        flat = SuppressionFilter("mytool", lines)
        assert flat.covers("REP001", 4)
        assert not flat.covers("REP001", 2)


class TestStmtSpans:
    def test_compound_header_span_stops_before_body(self):
        tree = ast.parse("def f():\n    x = 1\n    y = 2\n")
        assert (1, 1) in stmt_spans(tree)
        assert (2, 2) in stmt_spans(tree)


class TestReportPlumbing:
    def test_statistics_cover_every_rule(self):
        counts = rule_statistics([_Diag("REP001"), _Diag("REP001")],
                                 ["REP001", "REP002"])
        assert counts == {"REP001": 2, "REP002": 0}

    def test_json_report_shape(self):
        payload = json.loads(json_report(
            [{"rule": "REP001"}], {"REP001": 1}, files_checked=3))
        assert payload["diagnostics"] == [{"rule": "REP001"}]
        assert payload["statistics"] == {"REP001": 1}
        assert payload["files_checked"] == 3

    def test_exit_codes(self):
        assert (EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL) == (0, 1, 2)
        assert exit_code([]) == EXIT_CLEAN
        assert exit_code([_Diag("REP001")]) == EXIT_FINDINGS
