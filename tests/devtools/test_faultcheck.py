"""Faultcheck: cross-procedural exception-flow analysis of ``repro``.

Three layers of coverage:

* the repo-clean gate — the real source tree must produce zero
  diagnostics with zero suppressions (this is the CI contract),
* the mutation tests — the two historical fault-path bugs planted by
  ``--self-test`` (a supervised handler widened to swallow
  ``MemoryError``, the deleted worker signal resets from PR 6) must be
  reported at their exact file:line with the cross-procedural call
  chain, and
* unit tests for the analyzer internals: raise-set propagation,
  handler subtraction, taxonomy ancestry and CLI output formats.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.faultcheck import analyze_package
from repro.devtools.faultcheck.cli import (_plant_deleted_signal_reset,
                                           _plant_swallowed_host_error,
                                           default_root, main,
                                           run_self_test)
from repro.devtools.faultcheck.rules import FaultContext

SRC_ROOT = default_root()


@pytest.fixture(scope="module")
def clean_analysis():
    """One shared analysis of the real tree (indexing is the slow part)."""
    return analyze_package(SRC_ROOT)


@pytest.fixture(scope="module")
def doctored_tree(tmp_path_factory):
    """A copy of ``src/repro`` with both historical bugs planted."""
    root = tmp_path_factory.mktemp("doctored") / "repro"
    shutil.copytree(SRC_ROOT, root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    sched_path, handler_line = _plant_swallowed_host_error(root)
    pool_path, entry_line = _plant_deleted_signal_reset(root)
    return root, (sched_path, handler_line), (pool_path, entry_line)


# ----------------------------------------------------------------------
# Repo-clean gate
# ----------------------------------------------------------------------
class TestCleanTree:
    def test_no_diagnostics(self, clean_analysis):
        _, _, diagnostics = clean_analysis
        assert diagnostics == []

    def test_no_suppression_comments_in_src(self):
        # The checker's own modules document the marker; everything
        # else in src/ must pass with zero suppressions.
        checker_dir = SRC_ROOT / "devtools" / "faultcheck"
        common = SRC_ROOT / "devtools" / "common.py"
        offenders = [path for path in SRC_ROOT.rglob("*.py")
                     if checker_dir not in path.parents
                     and path != common
                     and "faultcheck: disable" in
                     path.read_text(encoding="utf-8")]
        assert offenders == []

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert main(["--root", str(SRC_ROOT)]) == 0
        assert capsys.readouterr().out == ""


# ----------------------------------------------------------------------
# Mutation test 1: the supervised handler swallows MemoryError (REP013)
# ----------------------------------------------------------------------
class TestSwallowedHostError:
    def test_reported_at_exact_handler_line(self, doctored_tree):
        root, (sched_path, handler_line), _ = doctored_tree
        _, _, diagnostics = analyze_package(root)
        hits = [d for d in diagnostics
                if d.rule == "REP013" and d.line == handler_line
                and Path(d.path) == sched_path]
        assert hits, [f"{d.path}:{d.line} {d.rule}" for d in diagnostics]
        assert any("MemoryError" in d.message for d in hits)

    def test_chain_reaches_scheduler_run(self, doctored_tree):
        root, (_, handler_line), _ = doctored_tree
        _, _, diagnostics = analyze_package(root)
        hits = [d for d in diagnostics
                if d.rule == "REP013" and d.line == handler_line]
        assert any("CampaignScheduler.run" in frame
                   for d in hits for frame in d.chain)


# ----------------------------------------------------------------------
# Mutation test 2: the worker signal reset is deleted (REP015, PR 6)
# ----------------------------------------------------------------------
class TestDeletedSignalReset:
    def test_reported_at_worker_entry_line(self, doctored_tree):
        root, _, (pool_path, entry_line) = doctored_tree
        _, _, diagnostics = analyze_package(root)
        hits = [d for d in diagnostics
                if d.rule == "REP015" and d.line == entry_line
                and Path(d.path) == pool_path]
        assert hits, [f"{d.path}:{d.line} {d.rule}" for d in diagnostics]
        assert any("SIGTERM" in d.message or "SIGINT" in d.message
                   for d in hits)

    def test_provenance_chain_names_the_installer(self, doctored_tree):
        # The finding must explain *which* inherited handler is the
        # hazard: the drain controller's signal.signal install.
        root, _, (_, entry_line) = doctored_tree
        _, _, diagnostics = analyze_package(root)
        hits = [d for d in diagnostics
                if d.rule == "REP015" and d.line == entry_line]
        assert any("DrainController.install" in frame
                   for d in hits for frame in d.chain)


# ----------------------------------------------------------------------
# End-to-end: the doctored tree through the CLI surfaces
# ----------------------------------------------------------------------
class TestDoctoredCli:
    def test_cli_exit_one_and_text_output(self, doctored_tree, capsys):
        root, (_, handler_line), (_, entry_line) = doctored_tree
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert f":{handler_line}: REP013" in out
        assert f":{entry_line}: REP015" in out

    def test_json_format(self, doctored_tree, capsys):
        root, (_, handler_line), (_, entry_line) = doctored_tree
        assert main(["--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"].get("REP013", 0) >= 1
        assert payload["statistics"].get("REP015", 0) >= 1
        lines = {(d["rule"], d["line"]) for d in payload["diagnostics"]}
        assert ("REP013", handler_line) in lines
        assert ("REP015", entry_line) in lines

    def test_suppression_comment_silences_handler_line(self, tmp_path):
        root = tmp_path / "repro"
        shutil.copytree(SRC_ROOT, root,
                        ignore=shutil.ignore_patterns("__pycache__"))
        sched_path, handler_line = _plant_swallowed_host_error(root)
        lines = sched_path.read_text(encoding="utf-8").splitlines(
            keepends=True)
        idx = handler_line - 1
        lines[idx] = lines[idx].rstrip("\n") \
            + "  # faultcheck: disable=REP013\n"
        sched_path.write_text("".join(lines), encoding="utf-8")
        _, _, diagnostics = analyze_package(root)
        assert not [d for d in diagnostics
                    if d.rule == "REP013" and d.line == handler_line]

    def test_self_test_exits_findings(self, capsys):
        # A successful self-test *finds* both planted bugs, so it uses
        # the shared findings exit code (1), not clean (0).
        assert run_self_test() == 1


# ----------------------------------------------------------------------
# Analyzer internals
# ----------------------------------------------------------------------
class TestRaisePropagation:
    def test_fatal_taxonomy_raises_reach_the_agent(self, clean_analysis):
        # The failure-budget fatal escapes the campaign loop by design;
        # the raise set of PoisonRec.train must carry it with a
        # cross-procedural chain back to the leaf raise.
        index, summaries, _ = clean_analysis
        ctx = FaultContext.build(index, summaries)
        entry = next(key for key in ctx.entries
                     if key.endswith("PoisonRec.train"))
        facts = ctx.raise_table[entry].values()
        budget = [fact for fact in facts
                  if fact.name == "FailureBudgetExhausted"]
        assert budget
        assert any(fact.chain for fact in budget)

    def test_handled_raises_are_subtracted(self, clean_analysis):
        # RetriesExhaustedError is caught on-path (the campaign loop
        # quarantines the sample; _serial_outcome absorbs it for the
        # pool), so neither entry may propagate it.
        index, summaries, _ = clean_analysis
        ctx = FaultContext.build(index, summaries)
        for suffix in ("PoisonRec.train", "QueryPool.attack_many"):
            entry = next(key for key in ctx.entries
                         if key.endswith(suffix))
            names = {fact.name
                     for fact in ctx.raise_table[entry].values()}
            assert "RetriesExhaustedError" not in names, suffix

    def test_host_triple_ancestry(self, clean_analysis):
        index, summaries, _ = clean_analysis
        ctx = FaultContext.build(index, summaries)
        assert "RuntimeError" in ctx.table.ancestry("RecursionError")
        mismatch = next(key for key in index.classes
                        if key.endswith("SnapshotMismatchError"))
        assert "CampaignError" in ctx.table.ancestry(mismatch)

    def test_host_errors_tuple_alias_expanded(self, clean_analysis):
        index, summaries, _ = clean_analysis
        ctx = FaultContext.build(index, summaries)
        alias = ctx.table.tuple_aliases.get(
            "repro.serve.supervision.HOST_ERRORS")
        assert alias == ("MemoryError", "SystemError", "RecursionError")


class TestForkProtocol:
    def test_worker_entry_discovered(self, clean_analysis):
        index, summaries, _ = clean_analysis
        ctx = FaultContext.build(index, summaries)
        assert any(key.endswith("_worker_main")
                   for key in ctx.fork_entries)

    def test_worker_resets_recorded(self, clean_analysis):
        index, summaries, _ = clean_analysis
        ctx = FaultContext.build(index, summaries)
        entry = next(key for key in ctx.fork_entries
                     if key.endswith("_worker_main"))
        assert {"SIGTERM", "SIGINT"} <= ctx.facts[entry].resets


class TestModuleRunner:
    def test_python_dash_m_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.faultcheck",
             "--root", str(SRC_ROOT), "--statistics"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC_ROOT.parent), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stderr

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP013", "REP014", "REP015", "REP016", "REP017"):
            assert rule_id in out
