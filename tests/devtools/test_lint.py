"""graphlint tests: each REP rule, suppression, CLI, and repo cleanliness."""

import json
import pathlib
import textwrap

import pytest

from repro.devtools.lint import RULES, lint_paths, lint_source, main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

NN_PATH = "src/repro/nn/layers.py"
LIB_PATH = "src/repro/core/example.py"
RUNTIME_PATH = "src/repro/runtime/example.py"
TEST_PATH = "tests/core/test_example.py"


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


def lint_snippet(snippet, path=TEST_PATH):
    return lint_source(textwrap.dedent(snippet), path)


class TestREP001LegacyRandom:
    def test_legacy_call_flagged(self):
        diags = lint_snippet("import numpy as np\nx = np.random.rand(3)\n")
        assert rules_of(diags) == ["REP001"]
        assert "np.random.rand" in diags[0].message
        assert diags[0].line == 2

    def test_seed_call_flagged(self):
        diags = lint_snippet("import numpy as np\nnp.random.seed(0)\n")
        assert rules_of(diags) == ["REP001"]

    def test_generator_api_allowed(self):
        diags = lint_snippet(
            """\
            import numpy as np

            def f(rng: np.random.Generator):
                return np.random.default_rng(np.random.SeedSequence(1))
            """)
        assert diags == []

    def test_legacy_import_flagged(self):
        diags = lint_snippet("from numpy.random import rand\n")
        assert rules_of(diags) == ["REP001"]


class TestREP002BlindExcept:
    def test_bare_except_flagged(self):
        diags = lint_snippet(
            "try:\n    pass\nexcept:\n    pass\n")
        assert rules_of(diags) == ["REP002"]

    def test_blind_exception_without_reraise_flagged(self):
        diags = lint_snippet(
            "try:\n    pass\nexcept Exception:\n    x = 1\n")
        assert rules_of(diags) == ["REP002"]

    def test_blind_exception_with_reraise_allowed(self):
        diags = lint_snippet(
            "try:\n    pass\nexcept Exception:\n    raise\n")
        assert diags == []

    def test_specific_exception_allowed(self):
        diags = lint_snippet(
            "try:\n    pass\nexcept KeyError:\n    x = 1\n")
        assert diags == []


class TestREP003TensorMutation:
    def test_data_write_flagged(self):
        diags = lint_snippet("t.data = arr\n")
        assert rules_of(diags) == ["REP003"]

    def test_grad_augassign_flagged(self):
        diags = lint_snippet("t.grad += g\n")
        assert rules_of(diags) == ["REP003"]

    def test_subscript_write_flagged(self):
        diags = lint_snippet("t.data[0] = 1.0\n")
        assert rules_of(diags) == ["REP003"]

    @pytest.mark.parametrize("path", [
        "src/repro/nn/optim.py",
        "src/repro/nn/tensor.py",
    ])
    def test_sanctioned_modules_exempt(self, path):
        source = '"""Doc."""\nt.data = arr\n'
        assert lint_source(source, path) == []

    def test_gradcheck_no_longer_exempt(self):
        # gradcheck perturbations now flow through Tensor.assign_, so the
        # module lost its REP003 whitelist entry.
        source = '"""Doc."""\nt.data = arr\n'
        diags = lint_source(source, "src/repro/devtools/gradcheck.py")
        assert rules_of(diags) == ["REP003"]


class TestREP004DtypeLiteral:
    def test_float_literal_in_nn_flagged(self):
        diags = lint_snippet(
            '"""Doc."""\nimport numpy as np\nx = np.zeros(3).astype(np.float64)\n',
            path=NN_PATH)
        assert rules_of(diags) == ["REP004"]

    def test_dtype_string_kwarg_in_nn_flagged(self):
        diags = lint_snippet(
            '"""Doc."""\nimport numpy as np\nx = np.zeros(3, dtype="float32")\n',
            path=NN_PATH)
        assert rules_of(diags) == ["REP004"]

    def test_tensor_py_defines_the_convention(self):
        source = '"""Doc."""\nimport numpy as np\n_FLOAT = np.float64\n'
        assert lint_source(source, "src/repro/nn/tensor.py") == []

    def test_outside_nn_unrestricted(self):
        diags = lint_snippet(
            "import numpy as np\nx = np.zeros(3, dtype=np.float64)\n")
        assert diags == []


class TestREP005BackwardClosure:
    def test_make_without_local_backward_flagged(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def exp(x):
                """Doc."""
                return Tensor._make(x.data, (x,), _shared_backward)
            ''', path=NN_PATH)
        assert rules_of(diags) == ["REP005"]

    def test_make_with_local_backward_allowed(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def exp(x):
                """Doc."""
                def backward(g):
                    x._accumulate(g)
                return Tensor._make(x.data, (x,), backward)
            ''', path=NN_PATH)
        assert diags == []

    def test_outside_nn_unrestricted(self):
        diags = lint_snippet(
            "def helper(x):\n    return Tensor._make(x.data, (x,), cb)\n")
        assert diags == []


class TestREP006Docstrings:
    def test_missing_module_docstring_flagged(self):
        diags = lint_source("x = 1\n", LIB_PATH)
        assert rules_of(diags) == ["REP006"]

    def test_public_function_needs_docstring(self):
        diags = lint_source('"""Doc."""\ndef f():\n    pass\n', LIB_PATH)
        assert rules_of(diags) == ["REP006"]
        assert "'f'" in diags[0].message

    def test_private_function_exempt(self):
        diags = lint_source('"""Doc."""\ndef _f():\n    pass\n', LIB_PATH)
        assert diags == []

    def test_no_base_class_public_method_needs_docstring(self):
        diags = lint_source(
            '"""Doc."""\nclass C:\n    """Doc."""\n    def m(self):\n'
            "        pass\n", LIB_PATH)
        assert rules_of(diags) == ["REP006"]
        assert "C.m" in diags[0].message

    def test_subclass_methods_may_inherit_docstrings(self):
        diags = lint_source(
            '"""Doc."""\nclass C(Base):\n    """Doc."""\n    def m(self):\n'
            "        pass\n", LIB_PATH)
        assert diags == []

    def test_decorated_accessors_exempt(self):
        diags = lint_source(
            '"""Doc."""\nclass C:\n    """Doc."""\n    @property\n'
            "    def m(self):\n        return 1\n", LIB_PATH)
        assert diags == []

    def test_test_files_exempt(self):
        assert lint_source("def test_x():\n    pass\n", TEST_PATH) == []


class TestREP007CheckpointDeterminism:
    def test_wall_clock_assignment_into_sink_flagged(self):
        diags = lint_snippet(
            '''\
            """Doc."""
            import time

            def save(path, arrays):
                """Doc."""
                stamp = time.time()
                atomic_savez(path, {"stamp": stamp, "arrays": arrays})
            ''', path=RUNTIME_PATH)
        assert rules_of(diags) == ["REP007"]
        assert "time.time()" in diags[0].message

    def test_direct_source_argument_flagged(self):
        diags = lint_snippet(
            '''\
            """Doc."""
            import pickle
            import uuid

            def persist(fh, state):
                """Doc."""
                pickle.dump({"run": uuid.uuid4().hex, "state": state}, fh)
            ''', path=RUNTIME_PATH)
        assert rules_of(diags) == ["REP007"]

    def test_set_iteration_order_flagged(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def save(path, items):
                """Doc."""
                order = list(set(items))
                checkpoint_write(path, order)
            ''', path=RUNTIME_PATH)
        assert rules_of(diags) == ["REP007"]

    def test_sorted_set_is_deterministic(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def save(path, items):
                """Doc."""
                order = sorted(set(items))
                atomic_savez(path, {"order": order})
            ''', path=RUNTIME_PATH)
        assert diags == []

    def test_reassignment_clears_taint(self):
        diags = lint_snippet(
            '''\
            """Doc."""
            import time

            def save(path, seed):
                """Doc."""
                stamp = time.time()
                stamp = float(seed)
                atomic_savez(path, {"stamp": stamp})
            ''', path=RUNTIME_PATH)
        assert diags == []

    def test_source_without_sink_allowed(self):
        diags = lint_snippet(
            '''\
            """Doc."""
            import time

            def benchmark(fn):
                """Doc."""
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            ''', path=RUNTIME_PATH)
        assert diags == []

    def test_testlike_files_exempt(self):
        diags = lint_snippet(
            "import time\n"
            "def test_x():\n"
            "    atomic_savez('p', {'t': time.time()})\n")
        assert diags == []


class TestREP008RawEnvironmentQuery:
    def test_raw_attack_in_core_flagged(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def evaluate(env):
                """Doc."""
                return env.attack([[1, 2]])
            ''', path=LIB_PATH)
        assert rules_of(diags) == ["REP008"]
        assert "call_with_retry" in diags[0].message

    def test_self_env_receiver_flagged(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            class Agent:
                """Doc."""

                def probe(self):
                    """Doc."""
                    return self.env.attack([[0]])
            ''', path=LIB_PATH)
        assert rules_of(diags) == ["REP008"]

    def test_retry_wrapped_function_sanctioned(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def query(env, policy):
                """Doc."""
                def attempt():
                    return env.attack([[1]])
                return call_with_retry(attempt, policy)
            ''', path=LIB_PATH)
        assert diags == []

    def test_outside_core_unrestricted(self):
        diags = lint_snippet(
            '''\
            """Doc."""

            def chaos(env):
                """Doc."""
                return env.attack([[1]])
            ''', path="src/repro/runtime/faults.py")
        assert diags == []

    def test_core_test_files_exempt(self):
        diags = lint_snippet(
            "def test_attack(env):\n    return env.attack([[1]])\n",
            path="src/repro/core/test_helpers.py")
        assert diags == []


class TestSuppression:
    def test_targeted_suppression(self):
        diags = lint_snippet(
            "t.data = arr  # graphlint: disable=REP003\n")
        assert diags == []

    def test_suppress_all_on_line(self):
        diags = lint_snippet("t.data = arr  # graphlint: disable\n")
        assert diags == []

    def test_wrong_rule_id_does_not_suppress(self):
        diags = lint_snippet(
            "t.data = arr  # graphlint: disable=REP001\n")
        assert rules_of(diags) == ["REP003"]

    def test_multiline_statement_trailing_comment(self):
        # The diagnostic anchors on the first line; the disable comment
        # sits on the closing line of the same statement.
        diags = lint_snippet(
            "t.data = (\n"
            "    arr\n"
            ")  # graphlint: disable=REP003\n")
        assert diags == []

    def test_multiline_statement_comment_on_first_line(self):
        diags = lint_snippet(
            "t.data = (  # graphlint: disable=REP003\n"
            "    arr\n"
            ")\n")
        assert diags == []

    def test_comment_inside_def_body_does_not_silence_def_diag(self):
        diags = lint_source(
            '"""Doc."""\n'
            "def f():\n"
            "    x = 1  # graphlint: disable=REP006\n"
            "    return x\n", LIB_PATH)
        assert rules_of(diags) == ["REP006"]


class TestCLI:
    def test_seeded_violation_exits_nonzero_with_location(self, tmp_path,
                                                          capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(4)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:2:5: REP001" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text('"""Doc."""\nimport numpy as np\n'
                        "rng = np.random.default_rng(0)\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        diags, checked = lint_paths([str(tmp_path)])
        assert checked == 1
        assert rules_of(diags) == ["REP000"]

    def test_missing_path_is_an_error_not_a_vacuous_pass(self, tmp_path,
                                                         capsys):
        missing = tmp_path / "nope"
        assert main([str(missing)]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        assert main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out

    def test_json_format_with_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(4)\n")
        assert main(["--format=json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["statistics"]["REP001"] == 1
        (diag,) = [d for d in payload["diagnostics"]
                   if d["rule"] == "REP001"]
        assert diag["path"] == str(bad)
        assert diag["line"] == 2

    def test_json_format_clean_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text('"""Doc."""\n')
        assert main(["--format=json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []
        assert all(count == 0
                   for count in payload["statistics"].values())

    def test_statistics_lists_every_rule(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(4)\n")
        assert main(["--statistics", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP001  1" in out
        for rule in RULES:
            assert rule.id in out


def test_repo_is_lint_clean():
    """The tentpole acceptance gate: the whole repo passes graphlint.

    This also subsumes the old runtime docstring walker
    (``tests/test_docstrings.py``) via REP006.
    """
    targets = [str(REPO_ROOT / part) for part in ("src", "tests",
                                                  "benchmarks")]
    diagnostics, checked = lint_paths(targets)
    assert checked > 100
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
