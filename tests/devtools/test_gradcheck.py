"""Shared gradcheck utility tests, including recommender-loss coverage."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.devtools.gradcheck import (GradcheckError, gradcheck,
                                      gradcheck_param, numeric_gradient)
from repro.devtools.shapecheck import SYMBOLIC_OP_NAMES
from repro.nn import Embedding, Tensor, concatenate, stack
from repro.nn import functional as F


def buggy_double(x: Tensor) -> Tensor:
    """Forward doubles, backward pretends the factor was 3."""
    def backward(g):
        x._accumulate(g * 3.0)

    return Tensor._make(x.data * 2.0, (x,), backward)


class TestGradcheck:
    def test_accepts_correct_gradient(self):
        x0 = np.linspace(-1.0, 1.0, 6).reshape(2, 3)
        gradcheck(lambda x: F.tanh(x).sum(), x0)

    def test_sums_non_scalar_outputs(self):
        gradcheck(lambda x: F.sigmoid(x), np.array([0.3, -0.2]))

    def test_rejects_wrong_gradient_with_index(self):
        with pytest.raises(GradcheckError) as excinfo:
            gradcheck(lambda x: buggy_double(x).sum(), np.array([1.0, 2.0]))
        message = str(excinfo.value)
        assert "analytic=" in message and "numeric=" in message

    def test_rejects_disconnected_input(self):
        with pytest.raises(GradcheckError, match="no gradient"):
            gradcheck(lambda x: Tensor(np.array([1.0])).sum(),
                      np.array([1.0]))

    def test_numeric_gradient_matches_analytic_quadratic(self):
        x0 = np.array([1.0, -2.0, 0.5])
        num = numeric_gradient(lambda arr: float((arr ** 2).sum()), x0)
        np.testing.assert_allclose(num, 2 * x0, atol=1e-6)


class TestGradcheckParam:
    def test_passes_and_restores_parameter(self, rng):
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True, name="w")
        x = rng.normal(size=(4, 3))
        before = w.data.copy()
        gradcheck_param(lambda: (Tensor(x) @ w).sum(), w)
        np.testing.assert_allclose(w.data, before)
        assert w.grad is None

    def test_probes_subset(self, rng):
        w = Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        gradcheck_param(lambda: F.tanh(Tensor(np.eye(5)) @ w).sum(), w,
                        probes=[(0, 0), (4, 4), (2, 3)])

    def test_rejects_unused_parameter(self, rng):
        w = Tensor(rng.normal(size=(2,)), requires_grad=True)
        with pytest.raises(GradcheckError, match="no gradient"):
            gradcheck_param(lambda: Tensor(np.ones(2)).sum(), w)

    def test_restores_parameter_even_on_failure(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True, name="p")
        before = x.data.copy()

        def loss():
            return buggy_double(x).sum()

        with pytest.raises(GradcheckError, match="'p'"):
            gradcheck_param(loss, x)
        np.testing.assert_allclose(x.data, before)


#: Kink-free probe point shared by the parity checks: unique values, none
#: within finite-difference reach of the relu/clip/minimum/max breakpoints.
_PARITY_X0 = np.linspace(-1.2, 1.3, 15).reshape(3, 5)
_PARITY_W = np.linspace(-0.4, 0.7, 10).reshape(5, 2)
_PARITY_SPARSE = sp.csr_matrix(np.arange(12, dtype=float).reshape(4, 3) * 0.1)
_PARITY_TARGETS = np.linspace(0.1, 0.9, 15).reshape(3, 5)

#: One numeric gradient check per op the shapecheck tracer models
#: (``repro.devtools.shapecheck.SYMBOLIC_OP_NAMES``) — the parity test
#: below fails when a new traced op lands without gradient coverage.
SYMBOLIC_OP_GRADCHECKS = {
    "exp": lambda x: F.exp(x),
    "log": lambda x: F.log(F.exp(x)),
    "sqrt": lambda x: F.sqrt(F.exp(x)),
    "relu": lambda x: F.relu(x) * x,
    "sigmoid": lambda x: F.sigmoid(x),
    "tanh": lambda x: F.tanh(x),
    "softmax": lambda x: F.softmax(x) * x,
    "log_softmax": lambda x: F.log_softmax(x),
    "logsigmoid": lambda x: F.logsigmoid(x),
    "leaky_relu": lambda x: F.leaky_relu(x) * x,
    "clip": lambda x: F.clip(x, -0.5, 0.5) * x,
    "minimum": lambda x: F.minimum(x, Tensor(np.full((3, 5), 0.1))),
    # A fresh seeded rng per call keeps the mask identical across the
    # analytic pass and every finite-difference probe.
    "dropout": lambda x: F.dropout(x, 0.3, np.random.default_rng(0)),
    "spmm": lambda x: F.spmm(_PARITY_SPARSE, x),
    "binary_cross_entropy_with_logits":
        lambda x: F.binary_cross_entropy_with_logits(x, _PARITY_TARGETS),
    "mse_loss": lambda x: F.mse_loss(x, _PARITY_TARGETS),
    "concatenate": lambda x: concatenate([x, x * 2.0], axis=1),
    "stack": lambda x: stack([x, x * 0.5], axis=0),
    "add": lambda x: x + 1.5,
    "sub": lambda x: x - 2.0,
    "mul": lambda x: x * x,
    "div": lambda x: x / 2.5,
    "pow": lambda x: x ** 3.0,
    "neg": lambda x: -x,
    "matmul": lambda x: x @ Tensor(_PARITY_W),
    "getitem": lambda x: x[1:, ::2],
    "reshape": lambda x: x.reshape(5, 3) * 2.0,
    "transpose": lambda x: x.transpose(1, 0) * 3.0,
    "sum": lambda x: x.sum(axis=0),
    "mean": lambda x: x.mean(),
    "max": lambda x: x.max(),
}


class TestSymbolicOpParity:
    """Every op the shapecheck tracer models has gradient coverage."""

    def test_covers_every_symbolic_op(self):
        assert set(SYMBOLIC_OP_GRADCHECKS) == set(SYMBOLIC_OP_NAMES)

    @pytest.mark.parametrize("name", sorted(SYMBOLIC_OP_GRADCHECKS))
    def test_gradcheck(self, name):
        gradcheck(SYMBOLIC_OP_GRADCHECKS[name], _PARITY_X0.copy())


class TestBPRLossEndToEnd:
    """Gradcheck the BPR pairwise loss through embeddings + logsigmoid.

    This is the differentiable form of the loss BPR's hand-vectorized SGD
    implements (``repro/recsys/bpr.py``): ``-log sigmoid(x_ui - x_uj)``
    with L2 regularization, checked end-to-end from embedding tables to
    the scalar loss.
    """

    @pytest.fixture()
    def triples(self, rng):
        users = np.array([0, 1, 2, 1])
        positives = np.array([0, 2, 1, 3])
        negatives = np.array([3, 0, 3, 2])
        user_emb = Embedding(3, 4, rng, std=0.3)
        item_emb = Embedding(5, 4, rng, std=0.3)
        reg = 0.05

        def loss():
            pu = user_emb(users)
            qi = item_emb(positives)
            qj = item_emb(negatives)
            scores = (pu * (qi - qj)).sum(axis=1)
            penalty = ((pu * pu).sum() + (qi * qi).sum()
                       + (qj * qj).sum()) * reg
            return -F.logsigmoid(scores).sum() + penalty

        return user_emb, item_emb, loss

    def test_user_factors_gradient(self, triples):
        user_emb, _, loss = triples
        gradcheck_param(loss, user_emb.weight, atol=1e-4)

    def test_item_factors_gradient(self, triples):
        _, item_emb, loss = triples
        gradcheck_param(loss, item_emb.weight, atol=1e-4)

    def test_matches_bpr_hand_rolled_gradient(self, triples):
        # The ranker's closed-form gradient (bpr.py's _sgd_epochs) must
        # agree with autograd on the unregularized pairwise term.
        user_emb, item_emb, _ = triples
        users = np.array([0, 1])
        pos = np.array([1, 2])
        neg = np.array([4, 0])

        pu = user_emb(users)
        qi = item_emb(pos)
        qj = item_emb(neg)
        loss = -F.logsigmoid((pu * (qi - qj)).sum(axis=1)).sum()
        user_emb.weight.zero_grad()
        item_emb.weight.zero_grad()
        loss.backward()

        pu_d = user_emb.weight.data[users]
        qi_d = item_emb.weight.data[pos]
        qj_d = item_emb.weight.data[neg]
        x = (pu_d * (qi_d - qj_d)).sum(axis=1)
        sig = 1.0 / (1.0 + np.exp(np.clip(x, -60, 60)))
        expected_user = -sig[:, None] * (qi_d - qj_d)
        np.testing.assert_allclose(user_emb.weight.grad[users],
                                   expected_user, atol=1e-10)
        np.testing.assert_allclose(item_emb.weight.grad[pos],
                                   -sig[:, None] * pu_d, atol=1e-10)
        np.testing.assert_allclose(item_emb.weight.grad[neg],
                                   sig[:, None] * pu_d, atol=1e-10)
