"""Shared gradcheck utility tests, including recommender-loss coverage."""

import numpy as np
import pytest

from repro.devtools.gradcheck import (GradcheckError, gradcheck,
                                      gradcheck_param, numeric_gradient)
from repro.nn import Embedding, Tensor
from repro.nn import functional as F


def buggy_double(x: Tensor) -> Tensor:
    """Forward doubles, backward pretends the factor was 3."""
    def backward(g):
        x._accumulate(g * 3.0)

    return Tensor._make(x.data * 2.0, (x,), backward)


class TestGradcheck:
    def test_accepts_correct_gradient(self):
        x0 = np.linspace(-1.0, 1.0, 6).reshape(2, 3)
        gradcheck(lambda x: F.tanh(x).sum(), x0)

    def test_sums_non_scalar_outputs(self):
        gradcheck(lambda x: F.sigmoid(x), np.array([0.3, -0.2]))

    def test_rejects_wrong_gradient_with_index(self):
        with pytest.raises(GradcheckError) as excinfo:
            gradcheck(lambda x: buggy_double(x).sum(), np.array([1.0, 2.0]))
        message = str(excinfo.value)
        assert "analytic=" in message and "numeric=" in message

    def test_rejects_disconnected_input(self):
        with pytest.raises(GradcheckError, match="no gradient"):
            gradcheck(lambda x: Tensor(np.array([1.0])).sum(),
                      np.array([1.0]))

    def test_numeric_gradient_matches_analytic_quadratic(self):
        x0 = np.array([1.0, -2.0, 0.5])
        num = numeric_gradient(lambda arr: float((arr ** 2).sum()), x0)
        np.testing.assert_allclose(num, 2 * x0, atol=1e-6)


class TestGradcheckParam:
    def test_passes_and_restores_parameter(self, rng):
        w = Tensor(rng.normal(size=(3, 2)), requires_grad=True, name="w")
        x = rng.normal(size=(4, 3))
        before = w.data.copy()
        gradcheck_param(lambda: (Tensor(x) @ w).sum(), w)
        np.testing.assert_allclose(w.data, before)
        assert w.grad is None

    def test_probes_subset(self, rng):
        w = Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        gradcheck_param(lambda: F.tanh(Tensor(np.eye(5)) @ w).sum(), w,
                        probes=[(0, 0), (4, 4), (2, 3)])

    def test_rejects_unused_parameter(self, rng):
        w = Tensor(rng.normal(size=(2,)), requires_grad=True)
        with pytest.raises(GradcheckError, match="no gradient"):
            gradcheck_param(lambda: Tensor(np.ones(2)).sum(), w)

    def test_restores_parameter_even_on_failure(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True, name="p")
        before = x.data.copy()

        def loss():
            return buggy_double(x).sum()

        with pytest.raises(GradcheckError, match="'p'"):
            gradcheck_param(loss, x)
        np.testing.assert_allclose(x.data, before)


class TestBPRLossEndToEnd:
    """Gradcheck the BPR pairwise loss through embeddings + logsigmoid.

    This is the differentiable form of the loss BPR's hand-vectorized SGD
    implements (``repro/recsys/bpr.py``): ``-log sigmoid(x_ui - x_uj)``
    with L2 regularization, checked end-to-end from embedding tables to
    the scalar loss.
    """

    @pytest.fixture()
    def triples(self, rng):
        users = np.array([0, 1, 2, 1])
        positives = np.array([0, 2, 1, 3])
        negatives = np.array([3, 0, 3, 2])
        user_emb = Embedding(3, 4, rng, std=0.3)
        item_emb = Embedding(5, 4, rng, std=0.3)
        reg = 0.05

        def loss():
            pu = user_emb(users)
            qi = item_emb(positives)
            qj = item_emb(negatives)
            scores = (pu * (qi - qj)).sum(axis=1)
            penalty = ((pu * pu).sum() + (qi * qi).sum()
                       + (qj * qj).sum()) * reg
            return -F.logsigmoid(scores).sum() + penalty

        return user_emb, item_emb, loss

    def test_user_factors_gradient(self, triples):
        user_emb, _, loss = triples
        gradcheck_param(loss, user_emb.weight, atol=1e-4)

    def test_item_factors_gradient(self, triples):
        _, item_emb, loss = triples
        gradcheck_param(loss, item_emb.weight, atol=1e-4)

    def test_matches_bpr_hand_rolled_gradient(self, triples):
        # The ranker's closed-form gradient (bpr.py's _sgd_epochs) must
        # agree with autograd on the unregularized pairwise term.
        user_emb, item_emb, _ = triples
        users = np.array([0, 1])
        pos = np.array([1, 2])
        neg = np.array([4, 0])

        pu = user_emb(users)
        qi = item_emb(pos)
        qj = item_emb(neg)
        loss = -F.logsigmoid((pu * (qi - qj)).sum(axis=1)).sum()
        user_emb.weight.zero_grad()
        item_emb.weight.zero_grad()
        loss.backward()

        pu_d = user_emb.weight.data[users]
        qi_d = item_emb.weight.data[pos]
        qj_d = item_emb.weight.data[neg]
        x = (pu_d * (qi_d - qj_d)).sum(axis=1)
        sig = 1.0 / (1.0 + np.exp(np.clip(x, -60, 60)))
        expected_user = -sig[:, None] * (qi_d - qj_d)
        np.testing.assert_allclose(user_emb.weight.grad[users],
                                   expected_user, atol=1e-10)
        np.testing.assert_allclose(item_emb.weight.grad[pos],
                                   -sig[:, None] * pu_d, atol=1e-10)
        np.testing.assert_allclose(item_emb.weight.grad[neg],
                                   sig[:, None] * pu_d, atol=1e-10)
