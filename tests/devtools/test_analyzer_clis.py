"""Uniform exit-code contract across the four analyzer CLIs.

Every analyzer (graphlint, shapecheck, effectcheck, faultcheck) follows
the shared convention from :mod:`repro.devtools.common`: 0 clean,
1 findings, 2 internal error (bad inputs, usage errors, crashes).  CI
gates on these codes without per-tool cases, so the contract gets one
test per leg here, plus the ``repro check --jobs`` aggregation that
fans the four tools out to worker processes.
"""

import pytest

from repro.cli import _run_analyzer, build_parser, cmd_check
from repro.devtools import lint as graphlint
from repro.devtools.effectcheck import cli as effectcheck_cli
from repro.devtools.faultcheck import cli as faultcheck_cli
from repro.devtools.shapecheck import cli as shapecheck_cli

ALL_CLIS = [
    pytest.param(graphlint.main, id="graphlint"),
    pytest.param(shapecheck_cli.main, id="shapecheck"),
    pytest.param(effectcheck_cli.main, id="effectcheck"),
    pytest.param(faultcheck_cli.main, id="faultcheck"),
]


class TestUsageErrorsExitTwo:
    @pytest.mark.parametrize("cli_main", ALL_CLIS)
    def test_unknown_flag(self, cli_main, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--definitely-not-a-flag"])
        assert excinfo.value.code == 2


class TestBadInputsExitTwo:
    def test_graphlint_missing_path(self, capsys):
        assert graphlint.main(["definitely/not/a/path"]) == 2

    def test_effectcheck_missing_root(self, capsys):
        assert effectcheck_cli.main(
            ["--root", "definitely/not/a/path"]) == 2

    def test_faultcheck_missing_root(self, capsys):
        assert faultcheck_cli.main(
            ["--root", "definitely/not/a/path"]) == 2


class TestFindingsExitOne:
    def test_graphlint_flags_planted_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('"""Doc."""\nimport numpy as np\n'
                       "x = np.random.rand(3)\n", encoding="utf-8")
        assert graphlint.main([str(bad)]) == 1

    def test_graphlint_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text('"""Doc."""\nVALUE = 1\n', encoding="utf-8")
        assert graphlint.main([str(good)]) == 0


class TestCheckJobsAggregation:
    def test_parser_accepts_jobs(self):
        args = build_parser().parse_args(["check", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["check"]).jobs == 1

    def test_run_analyzer_captures_output_and_code(self):
        name, code, out, err = _run_analyzer(
            ("graphlint", "repro.devtools.lint",
             ["definitely/not/a/path"]))
        assert name == "graphlint"
        assert code == 2
        assert "no such file" in err

    def test_run_analyzer_crash_maps_to_internal(self):
        name, code, out, err = _run_analyzer(
            ("broken", "definitely.not.a.module", []))
        assert code == 2
        assert "Traceback" in err or "ModuleNotFoundError" in err

    def test_check_jobs_aggregates_worst_code(self, tmp_path, capsys,
                                              monkeypatch):
        # A graphlint finding must surface through the parallel path as
        # the aggregate exit code, with the report still printed.
        bad = tmp_path / "bad.py"
        bad.write_text('"""Doc."""\nimport numpy as np\n'
                       "x = np.random.rand(3)\n", encoding="utf-8")
        args = build_parser().parse_args(
            ["check", str(bad), "--jobs", "2"])
        assert cmd_check(args) == 1
        captured = capsys.readouterr()
        assert "REP001" in captured.out
