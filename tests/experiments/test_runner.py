"""Experiment harness tests."""

import numpy as np
import pytest

from repro.experiments import (SCALES, build_environment, format_series,
                               format_table, resolve_scale, run_baseline,
                               run_poisonrec)


class TestScaleResolution:
    def test_default_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale().name == "ci"

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale().name == "small"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert resolve_scale("ci").name == "ci"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_scale("huge")

    def test_paper_scale_matches_paper_defaults(self):
        paper = SCALES["paper"]
        cfg = paper.config()
        assert cfg.num_attackers == 20
        assert cfg.trajectory_length == 20
        assert cfg.embedding_dim == 64
        assert cfg.samples_per_step == 32

    def test_budget_derived_from_scale(self):
        budget = SCALES["ci"].budget()
        assert budget.num_attackers == SCALES["ci"].num_attackers


class TestBuildAndRun:
    def test_build_environment(self):
        scale = SCALES["ci"]
        dataset, system, env = build_environment("steam", "itempop", scale,
                                                 seed=0)
        assert dataset.name == "steam"
        assert system.ranker.name == "itempop"
        assert env.num_original_items == dataset.num_items

    def test_run_baseline_returns_recnum(self):
        scale = SCALES["ci"]
        _, system, env = build_environment("steam", "itempop", scale, seed=0)
        recnum = run_baseline("popular", env, system, scale, seed=0)
        assert recnum >= 0

    @pytest.mark.slow
    def test_run_poisonrec_short(self):
        scale = SCALES["ci"]
        _, _, env = build_environment("steam", "itempop", scale, seed=0)
        result = run_poisonrec(env, scale, seed=0, steps=2)
        assert len(result.history) == 2


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[2:])) == 1

    def test_format_series(self):
        text = format_series("curve", [1.0, 2.5])
        assert text == "curve: [1.0, 2.5]"
