"""Documentation-coverage meta-tests.

Every public module, class and function in the library must carry a
docstring — the deliverable includes doc comments on every public item.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = ["repro", "repro.nn", "repro.data", "repro.recsys",
            "repro.attacks", "repro.core", "repro.analysis",
            "repro.experiments"]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            if not info.name.startswith("_"):
                yield importlib.import_module(
                    f"{package_name}.{info.name}")


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def public_members():
    seen = set()
    for module in ALL_MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") is False:
                continue
            key = f"{obj.__module__}.{obj.__qualname__}"
            if key not in seen:
                seen.add(key)
                yield key, obj


MEMBERS = list(public_members())


@pytest.mark.parametrize("key,obj", MEMBERS, ids=[k for k, _ in MEMBERS])
def test_public_member_has_docstring(key, obj):
    assert obj.__doc__ and obj.__doc__.strip(), key


def test_public_method_docstrings():
    """Public methods of public classes are documented (inherited
    docstrings count)."""
    missing = []
    for key, obj in MEMBERS:
        if not inspect.isclass(obj):
            continue
        for name, member in inspect.getmembers(obj, inspect.isfunction):
            if name.startswith("_"):
                continue
            if not member.__module__.startswith("repro"):
                continue
            doc = inspect.getdoc(member)
            if not doc:
                missing.append(f"{key}.{name}")
    assert not missing, f"undocumented methods: {missing}"
