"""PoisonRec agent tests: config validation and end-to-end learning."""

import numpy as np
import pytest

from repro.core import PoisonRec, PoisonRecConfig


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = PoisonRecConfig()
        assert cfg.num_attackers == 20
        assert cfg.trajectory_length == 20
        assert cfg.embedding_dim == 64
        assert cfg.samples_per_step == 32
        assert cfg.batch_size == 32
        assert cfg.ppo_epochs == 3
        assert cfg.learning_rate == 2e-3
        assert cfg.clip_epsilon == 0.1

    def test_batch_cannot_exceed_samples(self):
        with pytest.raises(ValueError):
            PoisonRecConfig(samples_per_step=4, batch_size=8)

    def test_positive_dimensions_enforced(self):
        with pytest.raises(ValueError):
            PoisonRecConfig(num_attackers=0)
        with pytest.raises(ValueError):
            PoisonRecConfig(trajectory_length=-1)
        with pytest.raises(ValueError):
            PoisonRecConfig(clip_epsilon=1.5)

    def test_ci_preset_overridable(self):
        cfg = PoisonRecConfig.ci(num_attackers=3)
        assert cfg.num_attackers == 3
        assert cfg.embedding_dim == 16


class TestAgent:
    def make_agent(self, env, space="bcbt-popular", **overrides):
        cfg = PoisonRecConfig.ci(num_attackers=6, trajectory_length=10,
                                 samples_per_step=4, batch_size=4,
                                 embedding_dim=8, **overrides)
        return PoisonRec(env, cfg, action_space=space)

    def test_train_step_records_history(self, itempop_env):
        agent = self.make_agent(itempop_env)
        stats = agent.train_step()
        assert stats.step == 0
        assert stats.max_reward >= stats.mean_reward >= 0.0
        assert agent.result.history == [stats]

    def test_train_runs_requested_steps(self, itempop_env):
        agent = self.make_agent(itempop_env)
        result = agent.train(steps=3)
        assert len(result.history) == 3
        assert [s.step for s in result.history] == [0, 1, 2]

    def test_callback_invoked(self, itempop_env):
        agent = self.make_agent(itempop_env)
        seen = []
        agent.train(steps=2, callback=seen.append)
        assert len(seen) == 2

    def test_best_trajectories_tracked(self, itempop_env):
        agent = self.make_agent(itempop_env)
        agent.train(steps=2)
        if agent.result.best_reward > 0:
            assert agent.result.best_trajectories is not None
            assert len(agent.result.best_trajectories) == 6

    def test_trajectories_respect_budget(self, itempop_env):
        agent = self.make_agent(itempop_env)
        rollout = agent.sample_attack()
        trajectories = rollout.trajectories()
        assert len(trajectories) == 6
        assert all(len(t) == 10 for t in trajectories)

    def test_target_click_ratio_in_unit_interval(self, itempop_env):
        agent = self.make_agent(itempop_env)
        ratio = agent.target_click_ratio(num_samples=2)
        assert 0.0 <= ratio <= 1.0

    def test_biased_space_starts_near_half_target_ratio(self, itempop_env):
        agent = self.make_agent(itempop_env)
        ratio = agent.target_click_ratio(num_samples=10)
        assert 0.3 < ratio < 0.7

    def test_string_and_object_action_space(self, itempop_env):
        from repro.core import make_action_space
        space = make_action_space("plain", itempop_env.num_original_items,
                                  itempop_env.target_items,
                                  itempop_env.item_popularity)
        agent = PoisonRec(itempop_env, PoisonRecConfig.ci(num_attackers=6),
                          action_space=space)
        assert agent.action_space is space

    def test_evaluate_returns_mean(self, itempop_env):
        agent = self.make_agent(itempop_env)
        value = agent.evaluate(num_samples=2)
        assert value >= 0.0

    def test_greedy_attack_is_deterministic(self, itempop_env):
        agent = self.make_agent(itempop_env)
        first = agent.greedy_attack().items
        second = agent.greedy_attack().items
        np.testing.assert_array_equal(first, second)

    def test_greedy_attack_valid_items(self, itempop_env):
        agent = self.make_agent(itempop_env)
        items = agent.greedy_attack().items
        assert ((items >= 0) & (items < itempop_env.num_items)).all()


@pytest.mark.slow
class TestLearning:
    def test_reward_improves_on_itempop(self, tiny_dataset):
        """Integration: PoisonRec's observed best reward must exceed the
        initial mean within a few training steps on ItemPop."""
        from repro.recsys import BlackBoxEnvironment, RecommenderSystem
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   num_attackers=12)
        env = BlackBoxEnvironment(system)
        cfg = PoisonRecConfig.ci(num_attackers=12, trajectory_length=15,
                                 samples_per_step=6, batch_size=6,
                                 embedding_dim=8, seed=0)
        agent = PoisonRec(env, cfg, action_space="bcbt-popular")
        result = agent.train(steps=8)
        early = np.mean(result.mean_rewards[:2])
        late = max(result.best_reward, np.max(result.mean_rewards[-3:]))
        assert late > early
