"""BCBT construction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_bcbt
from repro.core.bcbt import TreeArrays, _TreeBuilder


def make_tree(num_original, num_targets, assignment="popular", seed=0):
    num_items = num_original + num_targets
    popularity = np.arange(num_items, 0, -1).astype(float)
    popularity[num_original:] = 0.0  # targets are new items
    return build_bcbt(num_original, np.arange(num_original, num_items),
                      popularity, assignment=assignment,
                      rng=np.random.default_rng(seed))


class TestStructure:
    def test_every_item_is_a_leaf_exactly_once(self):
        tree = make_tree(50, 8)
        leaves = tree.leaves_in_order()
        assert sorted(leaves) == list(range(58))

    def test_internal_count_is_items_minus_one(self):
        # A full binary tree over n leaves has n-1 internal nodes.
        tree = make_tree(50, 8)
        assert tree.num_internal == 58 - 1

    def test_root_splits_targets_from_originals(self):
        tree = make_tree(50, 8)
        left, right = tree.children(np.array([tree.root]))
        left_leaves = TreeArrays(tree.num_items, int(left[0]),
                                 tree.left_child,
                                 tree.right_child).leaves_in_order()
        assert set(left_leaves) == set(range(50, 58))

    def test_depth_is_logarithmic(self):
        tree = make_tree(1000, 8)
        # 1 (root) + ceil(log2(1000)) for the original subtree.
        assert tree.max_depth() <= 1 + 10 + 1

    def test_popular_assignment_sorts_leaves(self):
        tree = make_tree(20, 4)
        leaves = tree.leaves_in_order()
        originals = [leaf for leaf in leaves if leaf < 20]
        # Popularity here decreases with item id, so sorted order = id order.
        assert originals == sorted(originals)

    def test_random_assignment_differs_from_popular(self):
        popular = make_tree(40, 8, "popular").leaves_in_order()
        random = make_tree(40, 8, "random", seed=1).leaves_in_order()
        assert popular != random

    def test_unknown_assignment_rejected(self):
        with pytest.raises(ValueError):
            make_tree(10, 4, assignment="alphabetical")

    def test_single_item_subtree(self):
        tree = make_tree(1, 1)
        assert tree.num_internal == 1  # just the root
        assert sorted(tree.leaves_in_order()) == [0, 1]

    def test_is_leaf(self):
        tree = make_tree(10, 4)
        assert tree.is_leaf(np.array([0, 5, 13])).all()
        assert not tree.is_leaf(np.array([tree.root])).any()

    def test_builder_rejects_empty(self):
        with pytest.raises(ValueError):
            _TreeBuilder(4).complete_tree([])


@settings(max_examples=30, deadline=None)
@given(num_original=st.integers(1, 200), num_targets=st.integers(1, 16))
def test_tree_invariants_hold_for_any_size(num_original, num_targets):
    tree = make_tree(num_original, num_targets)
    num_items = num_original + num_targets
    leaves = tree.leaves_in_order()
    assert sorted(leaves) == list(range(num_items))
    assert tree.num_internal == num_items - 1
    # Every path terminates within 1 (root) + the deeper subtree's height.
    subtree_height = max(int(np.ceil(np.log2(max(num_original, 2)))),
                         int(np.ceil(np.log2(max(num_targets, 2)))))
    assert tree.max_depth() <= 1 + subtree_height + 1


@settings(max_examples=15, deadline=None)
@given(num_original=st.integers(4, 100))
def test_popular_leaves_adjacent_in_popularity(num_original):
    """Assumption 1: adjacent leaves have adjacent popularity ranks."""
    tree = make_tree(num_original, 4)
    leaves = [leaf for leaf in tree.leaves_in_order() if leaf < num_original]
    # Leaf order equals popularity order (ids are popularity-ranked here).
    diffs = np.diff(leaves)
    assert (diffs == 1).all()
