"""Policy save/load tests."""

import json

import numpy as np
import pytest

from repro.core import (PoisonRec, PoisonRecConfig, load_policy, save_policy)
from repro.runtime import CorruptCheckpointError


def make_agent(env, space="bcbt-popular", seed=0, dim=8):
    cfg = PoisonRecConfig.ci(num_attackers=6, trajectory_length=8,
                             samples_per_step=4, batch_size=4,
                             embedding_dim=dim, seed=seed)
    return PoisonRec(env, cfg, action_space=space)


class TestSaveLoad:
    def test_roundtrip_restores_parameters(self, itempop_env, tmp_path):
        agent = make_agent(itempop_env)
        agent.train(steps=1)
        path = tmp_path / "policy.npz"
        save_policy(agent, path)

        fresh = make_agent(itempop_env)
        originals = [p.data.copy() for p in fresh.policy.parameters()]
        metadata = load_policy(fresh, path)
        loaded = [p.data for p in fresh.policy.parameters()]
        trained = [p.data for p in agent.policy.parameters()]
        assert metadata["action_space"] == "bcbt-popular"
        for restored, target in zip(loaded, trained):
            np.testing.assert_allclose(restored, target)
        assert any(not np.allclose(o, l)
                   for o, l in zip(originals, loaded))

    def test_loaded_policy_samples_identically(self, itempop_env, tmp_path):
        agent = make_agent(itempop_env, seed=1)
        agent.train(steps=1)
        path = tmp_path / "policy.npz"
        save_policy(agent, path)
        fresh = make_agent(itempop_env, seed=2)
        load_policy(fresh, path)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        a = agent.policy.sample_rollout(5, rng_a).items
        b = fresh.policy.sample_rollout(5, rng_b).items
        np.testing.assert_array_equal(a, b)

    def test_action_space_mismatch_rejected(self, itempop_env, tmp_path):
        agent = make_agent(itempop_env, space="bcbt-popular")
        path = tmp_path / "policy.npz"
        save_policy(agent, path)
        other = make_agent(itempop_env, space="plain")
        with pytest.raises(ValueError, match="action_space"):
            load_policy(other, path)

    def test_dim_mismatch_rejected(self, itempop_env, tmp_path):
        agent = make_agent(itempop_env, dim=8)
        path = tmp_path / "policy.npz"
        save_policy(agent, path)
        other = make_agent(itempop_env, dim=16)
        with pytest.raises(ValueError, match="dim"):
            load_policy(other, path)

    def test_metadata_records_best_reward(self, itempop_env, tmp_path):
        agent = make_agent(itempop_env)
        agent.result.best_reward = 42.0
        path = tmp_path / "policy.npz"
        save_policy(agent, path)
        metadata = load_policy(make_agent(itempop_env), path)
        assert metadata["best_reward"] == 42.0


class TestRobustness:
    def test_save_leaves_no_temp_file(self, itempop_env, tmp_path):
        save_policy(make_agent(itempop_env), tmp_path / "policy.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["policy.npz"]

    def test_truncated_archive_raises_corrupt_error(self, itempop_env,
                                                    tmp_path):
        path = tmp_path / "policy.npz"
        save_policy(make_agent(itempop_env), path)
        path.write_bytes(path.read_bytes()[:80])
        with pytest.raises(CorruptCheckpointError, match="truncated"):
            load_policy(make_agent(itempop_env), path)

    def test_garbage_archive_raises_corrupt_error(self, itempop_env,
                                                  tmp_path):
        path = tmp_path / "policy.npz"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(CorruptCheckpointError):
            load_policy(make_agent(itempop_env), path)

    def test_missing_file_raises_file_not_found(self, itempop_env, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_policy(make_agent(itempop_env), tmp_path / "absent.npz")

    def test_untrained_best_reward_roundtrips_via_null(self, itempop_env,
                                                       tmp_path):
        agent = make_agent(itempop_env)
        assert agent.result.best_reward == float("-inf")
        path = tmp_path / "policy.npz"
        save_policy(agent, path)

        # The archive's metadata must be standard JSON — no -Infinity.
        with np.load(path) as archive:
            text = bytes(archive["metadata"]).decode()

        def reject(token):
            raise AssertionError(f"non-standard JSON literal {token!r}")

        stored = json.loads(text, parse_constant=reject)
        assert stored["best_reward"] is None

        metadata = load_policy(make_agent(itempop_env), path)
        assert metadata["best_reward"] == float("-inf")
