"""Policy network tests: rollout shapes and sampling/recompute agreement."""

import numpy as np
import pytest

from repro.core import PolicyNetwork, make_action_space
from repro.core.action_space import ACTION_SPACE_KINDS

NUM_ORIGINAL = 25
TARGETS = np.arange(25, 33)


def make_policy(kind, num_attackers=5, dim=8, seed=0):
    popularity = np.concatenate([np.arange(NUM_ORIGINAL, 0, -1.0),
                                 np.zeros(8)])
    space = make_action_space(kind, NUM_ORIGINAL, TARGETS, popularity,
                              seed=seed)
    return PolicyNetwork(space, num_attackers, dim=dim, seed=seed)


@pytest.mark.parametrize("kind", ACTION_SPACE_KINDS)
class TestRollout:
    def test_shapes(self, kind, rng):
        policy = make_policy(kind)
        rollout = policy.sample_rollout(7, rng)
        assert rollout.items.shape == (5, 7)
        assert rollout.log_probs.shape == (
            5, 7, policy.action_space.max_decisions)
        assert rollout.mask.shape == rollout.log_probs.shape
        assert rollout.num_attackers == 5
        assert rollout.trajectory_length == 7

    def test_trajectories_are_lists_of_ints(self, kind, rng):
        policy = make_policy(kind)
        trajectories = policy.sample_rollout(4, rng).trajectories()
        assert len(trajectories) == 5
        assert all(isinstance(item, int) for t in trajectories for item in t)

    def test_items_in_universe(self, kind, rng):
        policy = make_policy(kind)
        items = policy.sample_rollout(6, rng).items
        assert ((items >= 0) & (items < 33)).all()

    def test_recompute_matches_rollout_log_probs(self, kind, rng):
        """rollout_log_probs under unchanged parameters must reproduce the
        log-probs recorded during numpy sampling — the end-to-end PPO
        correctness invariant across LSTM, DNN and action space."""
        policy = make_policy(kind)
        rollout = policy.sample_rollout(6, rng)
        recomputed = policy.rollout_log_probs(rollout.items,
                                              rollout.decisions).numpy()
        np.testing.assert_allclose(recomputed * rollout.mask,
                                   rollout.log_probs * rollout.mask,
                                   atol=1e-9)

    def test_recompute_gradient_reaches_parameters(self, kind, rng):
        policy = make_policy(kind)
        rollout = policy.sample_rollout(4, rng)
        lp = policy.rollout_log_probs(rollout.items, rollout.decisions)
        lp.sum().backward()
        grads = [p.grad for p in policy.parameters()]
        assert sum(g is not None for g in grads) >= len(grads) - 1


class TestDeterminism:
    def test_same_seed_same_rollout(self):
        a = make_policy("bcbt-popular", seed=3)
        b = make_policy("bcbt-popular", seed=3)
        ra = a.sample_rollout(5, np.random.default_rng(11))
        rb = b.sample_rollout(5, np.random.default_rng(11))
        np.testing.assert_array_equal(ra.items, rb.items)

    def test_numpy_fast_path_matches_weights(self, rng):
        """The numpy LSTM/DNN forward must agree with the autograd one."""
        policy = make_policy("plain")
        x = rng.normal(size=(3, 8))
        h = np.zeros((3, 8))
        c = np.zeros((3, 8))
        h_np, c_np = policy._np_lstm_step(x, h, c)
        from repro.nn import Tensor
        h_t, c_t = policy.lstm(Tensor(x), (Tensor(h), Tensor(c)))
        np.testing.assert_allclose(h_np, h_t.numpy(), atol=1e-12)
        np.testing.assert_allclose(c_np, c_t.numpy(), atol=1e-12)
        d_np = policy._np_dnn(h_np)
        d_t = policy.dnn(h_t)
        np.testing.assert_allclose(d_np, d_t.numpy(), atol=1e-12)

    def test_feature_table_sized_for_extra_rows(self):
        policy = make_policy("bcbt-popular")
        expected = 33 + policy.action_space.num_extra_rows
        assert policy.features.weight.shape[0] == expected
