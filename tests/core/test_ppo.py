"""PPO trainer tests: normalization, updates, degenerate batches."""

import numpy as np
import pytest

from repro.core import PolicyNetwork, PPOTrainer, make_action_space
from repro.core.ppo import Experience, normalize_rewards
from repro.nn import detect_anomaly


def make_setup(seed=0, num_attackers=4):
    popularity = np.concatenate([np.arange(20, 0, -1.0), np.zeros(8)])
    space = make_action_space("bcbt-popular", 20, np.arange(20, 28),
                              popularity, seed=seed)
    policy = PolicyNetwork(space, num_attackers, dim=8, seed=seed)
    trainer = PPOTrainer(policy, learning_rate=1e-2, seed=seed)
    return policy, trainer


def collect(policy, rewards, rng):
    return [Experience(rollout=policy.sample_rollout(5, rng), reward=r)
            for r in rewards]


class TestNormalizeRewards:
    def test_zero_mean_unit_std(self):
        normalized = normalize_rewards([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(normalized.mean(), 0.0, atol=1e-12)
        np.testing.assert_allclose(normalized.std(), 1.0, atol=1e-12)

    def test_order_preserved(self):
        normalized = normalize_rewards([5.0, 1.0, 3.0])
        assert normalized[0] > normalized[2] > normalized[1]

    def test_degenerate_batch_gives_zeros(self):
        np.testing.assert_allclose(normalize_rewards([7.0, 7.0, 7.0]), 0.0)
        np.testing.assert_allclose(normalize_rewards([0.0, 0.0]), 0.0)


class TestUpdate:
    def test_update_changes_parameters(self, rng):
        policy, trainer = make_setup()
        before = [p.data.copy() for p in policy.parameters()]
        experiences = collect(policy, [0.0, 1.0, 5.0, 10.0], rng)
        trainer.update(experiences, epochs=2)
        after = [p.data for p in policy.parameters()]
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_zero_variance_is_noop(self, rng):
        policy, trainer = make_setup()
        before = [p.data.copy() for p in policy.parameters()]
        experiences = collect(policy, [3.0, 3.0, 3.0], rng)
        losses = trainer.update(experiences, epochs=2)
        after = [p.data for p in policy.parameters()]
        assert all(np.allclose(b, a) for b, a in zip(before, after))
        assert losses == [0.0, 0.0]

    def test_empty_experiences(self):
        _, trainer = make_setup()
        assert trainer.update([], epochs=3) == []

    def test_update_increases_good_trajectory_probability(self, rng):
        """After updates, the highest-reward rollout must become more
        likely under the policy (the policy-gradient direction)."""
        policy, trainer = make_setup()
        experiences = collect(policy, [0.0, 0.0, 0.0, 20.0], rng)
        best = experiences[-1].rollout
        before = (policy.rollout_log_probs(best.items, best.decisions)
                  .numpy() * best.mask).sum()
        trainer.update(experiences, epochs=4)
        after = (policy.rollout_log_probs(best.items, best.decisions)
                 .numpy() * best.mask).sum()
        assert after > before

    def test_minibatching_respects_batch_size(self, rng):
        policy, trainer = make_setup()
        experiences = collect(policy, list(range(6)), rng)
        losses = trainer.update(experiences, epochs=3, batch_size=2)
        assert len(losses) == 3

    def test_losses_are_finite(self, rng):
        policy, trainer = make_setup()
        experiences = collect(policy, [1.0, 4.0, 9.0], rng)
        losses = trainer.update(experiences, epochs=3)
        assert all(np.isfinite(loss) for loss in losses)

    def test_update_is_clean_under_anomaly_mode(self, rng):
        """One full PPO iteration (sample + update) with the autograd
        sanitizer armed: no NaN/Inf or shape bug anywhere in the clipped
        surrogate's forward or backward graph."""
        policy, trainer = make_setup()
        with detect_anomaly():
            experiences = collect(policy, [0.0, 1.0, 5.0, 10.0], rng)
            losses = trainer.update(experiences, epochs=2)
        assert all(np.isfinite(loss) for loss in losses)
