"""Cross-cutting property-based tests on the PoisonRec core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_action_space, normalize_rewards
from repro.nn import Tensor, unbroadcast
from repro.nn import functional as F


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 1e6), min_size=2, max_size=32))
def test_normalize_rewards_properties(rewards):
    """Eq. 8 output is scale-free: zero mean, unit (or zero) std."""
    normalized = normalize_rewards(rewards)
    assert len(normalized) == len(rewards)
    assert abs(normalized.mean()) < 1e-6
    std = normalized.std()
    assert abs(std - 1.0) < 1e-6 or std == 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 60), st.integers(1, 12), st.integers(1, 6))
def test_tree_distribution_sums_to_one_any_size(num_original, num_targets,
                                                batch):
    """The BCBT leaf distribution is a proper distribution for any
    catalog size and any DNN output."""
    rng = np.random.default_rng(num_original * 31 + num_targets)
    num_items = num_original + num_targets
    popularity = rng.random(num_items)
    space = make_action_space("bcbt-popular", num_original,
                              np.arange(num_original, num_items),
                              popularity)
    features = rng.normal(0, 0.5,
                          (num_items + space.num_extra_rows, 4))
    dnn_out = rng.normal(size=(batch, 4))
    dist = space.item_distribution(dnn_out, features)
    np.testing.assert_allclose(dist.sum(axis=1), 1.0, atol=1e-9)
    assert (dist >= 0).all()


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 40), st.integers(1, 8))
def test_tree_sampling_always_terminates(num_original, num_targets):
    rng = np.random.default_rng(7)
    num_items = num_original + num_targets
    space = make_action_space("bcbt-popular", num_original,
                              np.arange(num_original, num_items),
                              np.ones(num_items))
    features = rng.normal(size=(num_items + space.num_extra_rows, 4))
    step = space.sample_step(rng.normal(size=(5, 4)), features, rng)
    assert ((step.items >= 0) & (step.items < num_items)).all()
    # Every walker's path ends at a leaf within max_decisions levels.
    assert step.mask.sum(axis=1).max() <= space.max_decisions


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(-3, 3), min_size=2, max_size=12))
def test_ppo_ratio_identity_at_same_params(values):
    """exp(new_lp - old_lp) == 1 when parameters are unchanged, so the
    clipped objective equals the advantage itself."""
    old_lp = Tensor(np.asarray(values))
    new_lp = Tensor(np.asarray(values))
    ratio = F.exp(new_lp - old_lp)
    np.testing.assert_allclose(ratio.numpy(), 1.0, atol=1e-12)
    clipped = F.clip(ratio, 0.9, 1.1)
    np.testing.assert_allclose(clipped.numpy(), 1.0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
def test_unbroadcast_inverts_broadcasting(a, b, c):
    """For any broadcastable shape pair, unbroadcast returns the original
    shape and preserves total mass."""
    grad = np.ones((a, b, c))
    for shape in [(b, c), (1, c), (b, 1), (a, b, c), (1, b, 1)]:
        out = unbroadcast(grad, shape)
        assert out.shape == shape
        np.testing.assert_allclose(out.sum(), grad.sum())
