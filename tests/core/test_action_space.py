"""Action-space tests: valid sampling, bias, numpy/autograd agreement."""

import numpy as np
import pytest

from repro.core import make_action_space
from repro.core.action_space import ACTION_SPACE_KINDS
from repro.nn import Tensor

NUM_ORIGINAL = 30
TARGETS = np.arange(30, 38)
NUM_ITEMS = 38


def make_space(kind, seed=0):
    popularity = np.concatenate([np.arange(NUM_ORIGINAL, 0, -1.0),
                                 np.zeros(8)])
    return make_action_space(kind, NUM_ORIGINAL, TARGETS, popularity,
                             seed=seed)


def random_features(space, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 0.3, (NUM_ITEMS + space.num_extra_rows, dim))


@pytest.mark.parametrize("kind", ACTION_SPACE_KINDS)
class TestCommonBehavior:
    def test_sampled_items_in_universe(self, kind, rng):
        space = make_space(kind)
        features = random_features(space)
        dnn_out = rng.normal(size=(16, 8))
        step = space.sample_step(dnn_out, features, rng)
        assert step.items.shape == (16,)
        assert ((step.items >= 0) & (step.items < NUM_ITEMS)).all()

    def test_log_probs_negative_and_masked(self, kind, rng):
        space = make_space(kind)
        features = random_features(space)
        step = space.sample_step(rng.normal(size=(8, 8)), features, rng)
        assert step.log_probs.shape == (8, space.max_decisions)
        assert (step.log_probs[step.mask > 0] <= 0).all()
        assert (step.log_probs[step.mask == 0] == 0).all()

    def test_recompute_matches_sampling_exactly(self, kind, rng):
        """The autograd recompute must reproduce the numpy sampling
        log-probs bit-for-bit under unchanged parameters — the core PPO
        correctness invariant."""
        space = make_space(kind)
        features_np = random_features(space)
        dnn_out_np = rng.normal(size=(12, 8))
        step = space.sample_step(dnn_out_np, features_np, rng)
        recomputed = space.step_log_probs(
            Tensor(dnn_out_np), Tensor(features_np, requires_grad=True),
            step.decisions).numpy()
        np.testing.assert_allclose(recomputed * step.mask,
                                   step.log_probs * step.mask, atol=1e-10)

    def test_recompute_has_gradient_path(self, kind, rng):
        space = make_space(kind)
        features = Tensor(random_features(space), requires_grad=True)
        dnn_out_np = rng.normal(size=(4, 8))
        step = space.sample_step(dnn_out_np, features.numpy(), rng)
        lp = space.step_log_probs(Tensor(dnn_out_np), features,
                                  step.decisions)
        (lp * Tensor(step.mask)).sum().backward()
        assert features.grad is not None
        assert np.abs(features.grad).sum() > 0


@pytest.mark.parametrize("kind", ACTION_SPACE_KINDS)
class TestItemDistribution:
    def test_rows_sum_to_one(self, kind, rng):
        space = make_space(kind)
        features = random_features(space)
        dnn_out = rng.normal(size=(6, 8))
        dist = space.item_distribution(dnn_out, features)
        assert dist.shape == (6, NUM_ITEMS)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0, atol=1e-10)
        assert (dist >= 0).all()

    def test_matches_empirical_sampling(self, kind):
        """The analytic distribution must match observed sampling
        frequencies — ties the fast sampler to the tree/softmax math."""
        space = make_space(kind)
        features = random_features(space, seed=2)
        dnn_out = np.ones((1, 8)) * 0.5
        dist = space.item_distribution(dnn_out, features)[0]
        sampler = np.random.default_rng(11)
        draws = 20000
        counts = np.zeros(NUM_ITEMS)
        batch = np.repeat(dnn_out, 500, axis=0)
        for _ in range(draws // 500):
            items = space.sample_step(batch, features, sampler).items
            np.add.at(counts, items, 1)
        empirical = counts / draws
        # Total-variation distance small.
        tv = 0.5 * np.abs(empirical - dist).sum()
        assert tv < 0.05, f"TV distance {tv:.3f}"


class TestBias:
    def test_biased_spaces_oversample_targets(self, rng):
        """With random features the two-stage designs give targets ~50%
        probability; Plain gives |I_t|/|I u I_t| ~ 21%."""
        draws = 3000
        rates = {}
        for kind in ("plain", "bplain", "bcbt-popular"):
            space = make_space(kind)
            features = random_features(space, seed=1) * 0.01
            sampler = np.random.default_rng(7)
            items = space.sample_step(np.zeros((draws, 8)), features,
                                      sampler).items
            rates[kind] = (items >= NUM_ORIGINAL).mean()
        assert abs(rates["plain"] - 8 / 38) < 0.05
        assert abs(rates["bplain"] - 0.5) < 0.05
        assert abs(rates["bcbt-popular"] - 0.5) < 0.05

    def test_plain_prefers_high_logit_items(self, rng):
        space = make_space("plain")
        features = np.zeros((NUM_ITEMS, 8))
        features[5] = 10.0  # huge dot product with positive dnn output
        items = space.sample_step(np.ones((200, 8)), features,
                                  np.random.default_rng(3)).items
        assert (items == 5).mean() > 0.95


class TestValidation:
    def test_noncontiguous_targets_rejected(self):
        with pytest.raises(ValueError):
            make_action_space("plain", 30, np.array([2, 35]),
                              np.zeros(38))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_space("octree")

    def test_tree_space_extra_rows_match_internal_nodes(self):
        space = make_space("bcbt-popular")
        assert space.num_extra_rows == NUM_ITEMS - 1

    def test_plain_has_no_extra_rows(self):
        assert make_space("plain").num_extra_rows == 0

    def test_bplain_has_two_set_rows(self):
        assert make_space("bplain").num_extra_rows == 2
