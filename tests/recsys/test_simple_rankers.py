"""ItemPop and CoVisitation ranker tests."""

import numpy as np

from repro.data import InteractionLog
from repro.recsys import CoVisitation, ItemPop


def make_log(num_items, sequences):
    log = InteractionLog(num_items)
    for user, seq in sequences.items():
        log.add_sequence(user, seq)
    return log


class TestItemPop:
    def test_scores_are_counts(self):
        log = make_log(5, {0: [1, 1, 2], 1: [2]})
        ranker = ItemPop(4, 5)
        ranker.fit(log)
        np.testing.assert_allclose(ranker.score(0, np.arange(5)),
                                   [0, 2, 2, 0, 0])

    def test_score_batch_matches_score(self):
        log = make_log(5, {0: [1, 2, 3]})
        ranker = ItemPop(4, 5)
        ranker.fit(log)
        candidates = np.array([[0, 1], [3, 4]])
        batch = ranker.score_batch(np.array([0, 1]), candidates)
        np.testing.assert_allclose(batch[0], ranker.score(0, candidates[0]))

    def test_poison_update_adds_counts(self):
        log = make_log(5, {0: [1]})
        ranker = ItemPop(4, 5)
        ranker.fit(log)
        poison = make_log(5, {3: [4, 4, 4]})
        ranker.poison_update(log.merged_with(poison), poison)
        assert ranker.score(0, np.array([4]))[0] == 3

    def test_snapshot_restore_roundtrip(self):
        log = make_log(5, {0: [1]})
        ranker = ItemPop(4, 5)
        ranker.fit(log)
        state = ranker.snapshot()
        poison = make_log(5, {3: [4] * 10})
        ranker.poison_update(log.merged_with(poison), poison)
        assert ranker.score(0, np.array([4]))[0] == 10
        ranker.restore(state)
        assert ranker.score(0, np.array([4]))[0] == 0


class TestCoVisitation:
    def test_consecutive_clicks_create_edges(self):
        log = make_log(5, {0: [1, 2], 1: [2]})
        ranker = CoVisitation(4, 5)
        ranker.fit(log)
        # user 0 has history [1, 2]; item scores reflect co-visits
        scores = ranker.score(0, np.arange(5))
        assert scores[1] > 0  # 2 -> 1 edge
        assert scores[2] > 0  # 1 -> 2 edge
        assert scores[3] == 0

    def test_no_history_scores_zero(self):
        log = make_log(5, {0: [1, 2]})
        ranker = CoVisitation(4, 5)
        ranker.fit(log)
        np.testing.assert_allclose(ranker.score(3, np.arange(5)), 0.0)

    def test_self_transitions_ignored(self):
        log = make_log(5, {0: [1, 1, 1]})
        ranker = CoVisitation(4, 5)
        ranker.fit(log)
        assert ranker.out_degree[1] == 0

    def test_poison_update_only_adds_poison_edges(self):
        log = make_log(6, {0: [1, 2]})
        ranker = CoVisitation(4, 6)
        ranker.fit(log)
        poison = make_log(6, {3: [5, 2]})
        ranker.poison_update(log.merged_with(poison), poison)
        # user 0 history [1,2]: item 5 now co-visited with 2
        scores = ranker.score(0, np.arange(6))
        assert scores[5] > 0

    def test_order_sensitivity(self):
        """Clicking target right after popular items links them; clicking
        targets in an isolated block does not."""
        base = make_log(8, {u: [0, 1] for u in range(4)})
        linked = CoVisitation(10, 8)
        linked.fit(base)
        poison_linked = make_log(8, {9: [0, 7, 0, 7]})
        linked.poison_update(base.merged_with(poison_linked), poison_linked)

        isolated = CoVisitation(10, 8)
        isolated.fit(base)
        poison_isolated = make_log(8, {9: [7, 7, 7, 7]})
        isolated.poison_update(base.merged_with(poison_isolated),
                               poison_isolated)

        users = np.arange(4)
        cands = np.tile(np.arange(8), (4, 1))
        linked_score = linked.score_batch(users, cands)[:, 7].sum()
        isolated_score = isolated.score_batch(users, cands)[:, 7].sum()
        assert linked_score > isolated_score

    def test_snapshot_restore(self):
        log = make_log(5, {0: [1, 2]})
        ranker = CoVisitation(4, 5)
        ranker.fit(log)
        state = ranker.snapshot()
        poison = make_log(5, {3: [4, 2]})
        ranker.poison_update(log.merged_with(poison), poison)
        assert ranker.score(0, np.arange(5))[4] > 0
        ranker.restore(state)
        assert ranker.score(0, np.arange(5))[4] == 0
