"""Tests for the production-style candidate generators."""

import numpy as np
import pytest

from repro.recsys import (ModelCandidateGenerator,
                          PopularityCandidateGenerator,
                          RandomCandidateGenerator, RecommenderSystem)

NUM_ORIGINAL = 60
TARGETS = np.arange(60, 68)


def popularity_vector():
    return np.arange(NUM_ORIGINAL, 0, -1.0)  # item 0 most popular


class TestPopularityGenerator:
    def make(self, head_fraction=0.5, count=20):
        return PopularityCandidateGenerator(
            NUM_ORIGINAL, TARGETS, popularity_vector(),
            num_original_candidates=count, seed=0,
            head_fraction=head_fraction)

    def test_head_is_most_popular(self):
        gen = self.make()
        np.testing.assert_array_equal(np.sort(gen.head), np.arange(10))

    def test_every_row_contains_head_and_targets(self):
        gen = self.make()
        rows = gen.generate(5)
        for row in rows:
            assert set(gen.head) <= set(row)
            assert set(TARGETS) <= set(row)

    def test_rows_have_no_duplicates(self):
        rows = self.make().generate(8)
        for row in rows:
            assert len(set(row.tolist())) == len(row)

    def test_head_fraction_one_is_pure_popularity(self):
        gen = self.make(head_fraction=1.0)
        rows = gen.generate(3)
        for row in rows:
            originals = sorted(i for i in row if i < NUM_ORIGINAL)
            assert originals == list(range(20))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            self.make(head_fraction=1.5)


class TestModelGenerator:
    def make(self, exploration=0.0):
        rng = np.random.default_rng(0)
        dim = 4
        user_factors = rng.normal(size=(10, dim))
        item_factors = rng.normal(size=(NUM_ORIGINAL + 8, dim))
        return ModelCandidateGenerator(
            NUM_ORIGINAL, TARGETS, user_factors, item_factors,
            user_ids=np.arange(10), num_original_candidates=20, seed=0,
            exploration_fraction=exploration), user_factors, item_factors

    def test_retrieves_top_scoring_items(self):
        gen, user_factors, item_factors = self.make(exploration=0.0)
        rows = gen.generate(10)
        scores = user_factors @ item_factors[:NUM_ORIGINAL].T
        for row_index in range(10):
            expected = set(np.argsort(-scores[row_index],
                                      kind="stable")[:20].tolist())
            originals = set(i for i in rows[row_index] if i < NUM_ORIGINAL)
            assert originals == expected

    def test_refresh_changes_candidates(self):
        gen, user_factors, item_factors = self.make(exploration=0.0)
        before = gen.generate(10)
        gen.refresh(-user_factors, item_factors)  # invert preferences
        after = gen.generate(10)
        assert not np.array_equal(np.sort(before, axis=1),
                                  np.sort(after, axis=1))

    def test_exploration_adds_random_items(self):
        gen, *_ = self.make(exploration=0.5)
        rows = gen.generate(10)
        assert rows.shape == (10, 28)
        for row in rows:
            assert len(set(row.tolist())) == len(row)


class TestSystemIntegration:
    def test_popularity_generator_by_name(self, tiny_dataset):
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   num_attackers=6,
                                   candidate_generator="popularity")
        assert isinstance(system.candidate_generator,
                          PopularityCandidateGenerator)
        assert system.recnum() >= 0

    def test_unknown_generator_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            RecommenderSystem(tiny_dataset, "itempop", seed=0,
                              candidate_generator="oracle")

    def test_generator_instance_accepted(self, tiny_dataset):
        generator = RandomCandidateGenerator(
            tiny_dataset.num_items,
            np.arange(tiny_dataset.num_items, tiny_dataset.num_items + 8),
            seed=0)
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   num_attackers=6,
                                   candidate_generator=generator)
        assert system.candidate_generator is generator

    def test_query_count_increments(self, tiny_dataset):
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   num_attackers=6)
        assert system.query_count == 0
        target = int(system.target_items[0])
        system.attack([[target] * 5])
        system.attack([[target] * 5])
        assert system.query_count == 2

    def test_model_generator_full_system_flow(self, tiny_dataset):
        """Two-tower retrieval candidates drive the whole RecNum pipeline."""
        from repro.recsys import PMF
        retrieval = PMF(tiny_dataset.num_users + 20,
                        tiny_dataset.num_items + 8, seed=0, epochs=3)
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   num_attackers=6)
        retrieval.fit(system.clean_log)
        generator = ModelCandidateGenerator(
            system.num_original_items, system.target_items,
            retrieval.user_factors, retrieval.item_factors,
            user_ids=system.eval_users, num_original_candidates=20, seed=0)
        modeled = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                    num_attackers=6,
                                    candidate_generator=generator)
        assert modeled.candidates.shape == (len(modeled.eval_users), 28)
        assert modeled.recnum() >= 0

    def test_target_exposures_sum_to_recnum(self, tiny_dataset):
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   num_attackers=6)
        target = int(system.target_items[2])
        system.attack([[target] * 40 for _ in range(6)])
        exposures = system.target_exposures()
        assert exposures.sum() == system.recnum()
        # The flooded target dominates its siblings.
        assert exposures[2] == exposures.max()