"""Ranking-quality evaluation tests."""

import numpy as np
import pytest

from repro.data import Dataset, InteractionLog
from repro.recsys import (ItemPop, RankingQuality, evaluate_ranking,
                          make_ranker, random_baseline_quality)
from repro.recsys.evaluation import sample_eval_negatives


def block_dataset(num_users=30, num_items=24, seed=0):
    """Clustered data with a held-out item per user from the same block."""
    rng = np.random.default_rng(seed)
    train = InteractionLog(num_items)
    test = {}
    half = num_items // 2
    for user in range(num_users):
        lo = 0 if user < num_users // 2 else half
        items = rng.integers(lo, lo + half, size=7)
        train.add_sequence(user, items[:-1].tolist())
        test[user] = int(items[-1])
    return Dataset(name="blocks", train=train, test=test)


class TestEvaluateRanking:
    def test_oracle_ranker_scores_perfectly(self):
        ds = block_dataset()

        class Oracle(ItemPop):
            def score(self, user, item_ids):
                # Gives the held-out item an unbeatable score.
                scores = np.zeros(len(item_ids))
                scores[np.asarray(item_ids) == ds.test[user]] = 1e9
                return scores

        oracle = Oracle(30, 24)
        quality = evaluate_ranking(oracle, ds, k=10)
        assert quality.hit_rate == 1.0
        assert quality.ndcg == 1.0

    def test_constant_ranker_is_random_level(self):
        ds = block_dataset()
        ranker = ItemPop(30, 24)  # never fit: all-zero scores
        quality = evaluate_ranking(ranker, ds, k=10, num_negatives=50)
        # With all-tied scores rank=0 for everyone under strict comparison;
        # instead verify the metric stays a valid probability.
        assert 0.0 <= quality.hit_rate <= 1.0

    def test_trained_rankers_beat_random(self):
        ds = block_dataset()
        random_hr = random_baseline_quality(ds)
        for name in ("pmf", "bpr"):
            ranker = make_ranker(name, num_users=30, num_items=24, seed=0)
            ranker.fit(ds.train)
            quality = evaluate_ranking(ranker, ds, k=10)
            assert quality.hit_rate > random_hr, name

    def test_empty_held_out(self):
        ds = block_dataset()
        quality = evaluate_ranking(ItemPop(30, 24), ds, held_out={})
        assert quality.num_users == 0
        assert quality.hit_rate == 0.0

    def test_custom_held_out_used(self):
        ds = block_dataset()
        ranker = ItemPop(30, 24)
        ranker.fit(ds.train)
        quality = evaluate_ranking(ranker, ds, held_out={0: ds.test[0]})
        assert quality.num_users == 1

    def test_str_rendering(self):
        quality = RankingQuality(hit_rate=0.5, ndcg=0.25, num_users=10, k=10)
        assert "HR@10=0.500" in str(quality)


def test_random_baseline_formula():
    ds = block_dataset()
    assert random_baseline_quality(ds, k=10, num_negatives=50) == pytest.approx(
        10 / 51)


class TestSampleEvalNegatives:
    """The batched rejection sampler behind evaluate_ranking."""

    def setup_method(self):
        self.ds = block_dataset()
        self.users = np.fromiter(self.ds.test.keys(), dtype=np.int64)
        self.positives = np.fromiter(
            (self.ds.test[int(u)] for u in self.users), dtype=np.int64)

    def draw(self, seed):
        return sample_eval_negatives(np.random.default_rng(seed),
                                     self.ds.train, self.users,
                                     self.positives, self.ds.num_items, 20)

    def test_seeded_determinism(self):
        assert np.array_equal(self.draw(11), self.draw(11))

    def test_seeds_differ(self):
        assert not np.array_equal(self.draw(11), self.draw(12))

    def test_negatives_avoid_clicked_and_positive(self):
        negatives = self.draw(0)
        for i, user in enumerate(self.users):
            clicked = set(self.ds.train.sequence(int(user)))
            clicked.add(int(self.positives[i]))
            assert not set(negatives[i].tolist()) & clicked

    def test_nonconvergence_raises(self):
        # One user clicked the entire universe: no negative exists.
        train = InteractionLog(6)
        train.add_sequence(0, [0, 1, 2, 3, 4])
        with pytest.raises(ValueError, match="did not converge"):
            sample_eval_negatives(np.random.default_rng(0), train,
                                  np.array([0]), np.array([5]), 6, 4,
                                  max_rounds=8)

    def test_evaluate_ranking_seeded_regression(self):
        """Same seed, same metrics — across calls and ranker refits."""
        ranker = make_ranker("itempop", self.ds.num_users, self.ds.num_items,
                             seed=0)
        ranker.fit(self.ds.train)
        first = evaluate_ranking(ranker, self.ds, seed=3)
        ranker.fit(self.ds.train)
        second = evaluate_ranking(ranker, self.ds, seed=3)
        assert (first.hit_rate, first.ndcg) == (second.hit_rate, second.ndcg)
