"""PMF and BPR matrix-factorization ranker tests."""

import numpy as np
import pytest

from repro.data import InteractionLog
from repro.recsys import BPR, PMF
from repro.recsys.base import sample_negatives


def clustered_log(num_users=30, num_items=20, seed=0):
    """Two disjoint user/item blocks: strong CF signal."""
    rng = np.random.default_rng(seed)
    log = InteractionLog(num_items)
    half_items = num_items // 2
    for user in range(num_users):
        block = 0 if user < num_users // 2 else 1
        lo = 0 if block == 0 else half_items
        for _ in range(6):
            log.add(user, int(rng.integers(lo, lo + half_items)))
    return log


@pytest.mark.parametrize("cls", [PMF, BPR])
class TestFactorRankers:
    def test_learns_block_structure(self, cls):
        log = clustered_log()
        ranker = cls(30, 20, seed=0)
        ranker.fit(log)
        # A block-0 user should prefer block-0 items on average.
        scores = ranker.score(2, np.arange(20))
        assert scores[:10].mean() > scores[10:].mean()

    def test_score_batch_matches_score(self, cls):
        log = clustered_log()
        ranker = cls(30, 20, seed=0)
        ranker.fit(log)
        candidates = np.array([[1, 5, 15], [0, 11, 19]])
        batch = ranker.score_batch(np.array([0, 20]), candidates)
        np.testing.assert_allclose(batch[0], ranker.score(0, candidates[0]))
        np.testing.assert_allclose(batch[1], ranker.score(20, candidates[1]))

    def test_fit_deterministic(self, cls):
        log = clustered_log()
        a = cls(30, 20, seed=3)
        a.fit(log)
        b = cls(30, 20, seed=3)
        b.fit(log)
        np.testing.assert_allclose(a.item_factors, b.item_factors)

    def test_snapshot_restore(self, cls):
        log = clustered_log()
        ranker = cls(30, 20, seed=0)
        ranker.fit(log)
        state = ranker.snapshot()
        before = ranker.score(0, np.arange(20)).copy()
        poison = InteractionLog(20)
        poison.add_sequence(29, [19] * 10)
        ranker.poison_update(log.merged_with(poison), poison)
        ranker.restore(state)
        np.testing.assert_allclose(ranker.score(0, np.arange(20)), before)

    def test_poison_update_moves_new_target(self, cls):
        # The paper's protocol: targets are brand-new items.  Flooding a
        # new item alongside block-0 items must raise its score for
        # block-0 users.
        log = clustered_log(num_users=24, num_items=20)
        new_target = 20
        extended = InteractionLog(21)
        for user, seq in log.iter_sequences():
            extended.add_sequence(user, seq)
        ranker = cls(30, 21, seed=0, update_epochs=5)
        ranker.fit(extended)
        before = np.mean([ranker.score(u, np.array([new_target]))[0]
                          for u in range(10)])
        poison = InteractionLog(21)
        for attacker in range(24, 30):
            seq = []
            for _ in range(2):
                for item in (0, 1, 2, 3):
                    seq.extend([new_target, item])
            poison.add_sequence(attacker, seq)
        ranker.poison_update(extended.merged_with(poison), poison)
        after = np.mean([ranker.score(u, np.array([new_target]))[0]
                         for u in range(10)])
        assert after > before
        assert np.isfinite(ranker.item_factors).all()

    def test_item_embeddings_shape(self, cls):
        ranker = cls(10, 15, seed=0, dim=8)
        emb = ranker.item_embeddings()
        assert emb.shape == (15, 8)


class TestSampleNegatives:
    def test_count_and_range(self, rng):
        negatives = sample_negatives(rng, np.array([1, 2]), 50, 200)
        assert len(negatives) == 200
        assert negatives.min() >= 0
        assert negatives.max() < 50

    def test_rerolls_reduce_collisions(self, rng):
        positives = np.arange(10)
        negatives = sample_negatives(rng, positives, 1000, 500)
        collision_rate = np.isin(negatives, positives).mean()
        assert collision_rate < 0.01
