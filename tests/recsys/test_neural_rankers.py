"""NeuMF, AutoRec, GRU4Rec and NGCF tests (fast configurations)."""

import numpy as np
import pytest

from repro.data import InteractionLog
from repro.recsys import AutoRec, GRU4Rec, NGCF, NeuMF


def clustered_log(num_users=24, num_items=16, seed=0, clicks=6):
    rng = np.random.default_rng(seed)
    log = InteractionLog(num_items)
    half = num_items // 2
    for user in range(num_users):
        lo = 0 if user < num_users // 2 else half
        for _ in range(clicks):
            log.add(user, int(rng.integers(lo, lo + half)))
    return log


FAST = {
    NeuMF: dict(dim=8, epochs=3, update_epochs=3),
    AutoRec: dict(hidden=8, epochs=4, update_epochs=2),
    GRU4Rec: dict(dim=8, epochs=3, update_epochs=3),
    NGCF: dict(dim=8, epochs=3, update_epochs=2, batches_per_epoch=2),
}


@pytest.mark.parametrize("cls", list(FAST))
class TestNeuralRankersCommon:
    def make(self, cls, seed=0):
        return cls(30, 16, seed=seed, **FAST[cls])

    def test_fit_and_score_shapes(self, cls):
        ranker = self.make(cls)
        ranker.fit(clustered_log())
        scores = ranker.score(0, np.arange(16))
        assert scores.shape == (16,)
        assert np.isfinite(scores).all()

    def test_score_batch_matches_score(self, cls):
        ranker = self.make(cls)
        ranker.fit(clustered_log())
        candidates = np.array([[0, 5, 9], [1, 2, 15]])
        batch = ranker.score_batch(np.array([0, 13]), candidates)
        np.testing.assert_allclose(batch[0], ranker.score(0, candidates[0]),
                                   atol=1e-8)

    def test_learns_block_preference(self, cls):
        log = clustered_log()
        ranker = self.make(cls)
        ranker.fit(log)
        # Average over block-0 users: block-0 items should outscore block-1.
        users = np.arange(6)
        cands = np.tile(np.arange(16), (6, 1))
        scores = ranker.score_batch(users, cands)
        assert scores[:, :8].mean() > scores[:, 8:].mean()

    def test_snapshot_restore_roundtrip(self, cls):
        log = clustered_log()
        ranker = self.make(cls)
        ranker.fit(log)
        state = ranker.snapshot()
        before = ranker.score(0, np.arange(16)).copy()
        poison = InteractionLog(16)
        poison.add_sequence(29, [15, 0, 15, 1, 15, 2])
        ranker.poison_update(log.merged_with(poison), poison)
        ranker.restore(state)
        np.testing.assert_allclose(ranker.score(0, np.arange(16)), before,
                                   atol=1e-10)

    def test_deterministic_fit(self, cls):
        log = clustered_log()
        a = self.make(cls, seed=5)
        a.fit(log)
        b = self.make(cls, seed=5)
        b.fit(log)
        np.testing.assert_allclose(a.score(0, np.arange(16)),
                                   b.score(0, np.arange(16)), atol=1e-12)


class TestGRU4RecSpecifics:
    def test_window_left_padding(self):
        ranker = GRU4Rec(5, 10, seed=0, window=4, epochs=1)
        window = ranker._window_for([7])
        assert window.tolist() == [10, 10, 10, 7]  # pad id = num_items

    def test_window_truncates_to_tail(self):
        ranker = GRU4Rec(5, 10, seed=0, window=3, epochs=1)
        window = ranker._window_for([1, 2, 3, 4, 5])
        assert window.tolist() == [3, 4, 5]

    def test_history_updated_by_poison(self):
        log = clustered_log()
        ranker = GRU4Rec(30, 16, seed=0, **FAST[GRU4Rec])
        ranker.fit(log)
        poison = InteractionLog(16)
        poison.add_sequence(29, [3, 4])
        ranker.poison_update(log.merged_with(poison), poison)
        assert ranker._histories[29] == [3, 4]

    def test_item_embeddings_excludes_pad(self):
        ranker = GRU4Rec(5, 10, seed=0, dim=8, epochs=1)
        assert ranker.item_embeddings().shape == (10, 8)


class TestAutoRecSpecifics:
    def test_scores_come_from_reconstruction(self):
        log = clustered_log()
        ranker = AutoRec(30, 16, seed=0, **FAST[AutoRec])
        ranker.fit(log)
        recon = ranker._reconstruct(np.array([0]))[0]
        np.testing.assert_allclose(ranker.score(0, np.arange(16)), recon)

    def test_profiles_rebuilt_on_poison(self):
        log = clustered_log()
        ranker = AutoRec(30, 16, seed=0, **FAST[AutoRec])
        ranker.fit(log)
        poison = InteractionLog(16)
        poison.add_sequence(29, [15])
        ranker.poison_update(log.merged_with(poison), poison)
        assert 15 in ranker._user_items[29]

    def test_rows_densify_profiles(self):
        ranker = AutoRec(30, 16, seed=0, **FAST[AutoRec])
        ranker._user_items = {3: {1, 5}}
        rows = ranker._rows(np.array([3, 4]))
        assert rows[0, 1] == 1.0 and rows[0, 5] == 1.0
        assert rows[0].sum() == 2.0
        assert rows[1].sum() == 0.0  # unknown user: empty profile


class TestNGCFSpecifics:
    def test_adjacency_is_symmetric_normalized(self):
        log = clustered_log()
        ranker = NGCF(30, 16, seed=0, **FAST[NGCF])
        adjacency = ranker._build_adjacency(log)
        dense = adjacency.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        # Spectral radius of the symmetric-normalized adjacency is <= 1.
        eigenvalues = np.linalg.eigvalsh(dense)
        assert np.abs(eigenvalues).max() <= 1.0 + 1e-9

    def test_empty_log_adjacency(self):
        ranker = NGCF(4, 4, seed=0, dim=4, epochs=1, num_layers=1)
        adjacency = ranker._build_adjacency(InteractionLog(4))
        assert adjacency.nnz == 0

    def test_item_embeddings_concatenate_layers(self):
        ranker = NGCF(10, 8, seed=0, dim=4, num_layers=2, epochs=1,
                      batches_per_epoch=1)
        ranker.fit(clustered_log(num_users=10, num_items=8, clicks=3))
        assert ranker.item_embeddings().shape == (8, 4 * 3)
