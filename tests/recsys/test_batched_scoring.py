"""Batched scoring contract: ``score_batch`` is bit-equal to stacked
``score`` for every ranker, before and after a poison update.

This is the invariant the vectorized environment (``system.recommend``,
``evaluate_ranking``) relies on: switching from the per-user loop to the
fused kernels must not move a single RecNum or metric bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import InteractionLog
from repro.recsys.registry import RANKER_NAMES, make_ranker

NUM_USERS = 24
NUM_ITEMS = 40


def tiny_log(seed: int = 0) -> InteractionLog:
    rng = np.random.default_rng(seed)
    log = InteractionLog(NUM_ITEMS)
    for user in range(NUM_USERS - 2):  # leave two users with no history
        length = int(rng.integers(3, 9))
        log.add_sequence(user, rng.integers(0, NUM_ITEMS,
                                            size=length).tolist())
    return log


def candidate_matrix(seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    candidates = rng.integers(0, NUM_ITEMS, size=(NUM_USERS, 12))
    # Force duplicate candidates within rows — the batched kernels must
    # reproduce the serial scorer's duplicate handling exactly.
    candidates[:, 5] = candidates[:, 2]
    candidates[0] = candidates[0, 0]
    return candidates


def stacked_serial(ranker, users, candidates):
    return np.stack([ranker.score(int(u), row)
                     for u, row in zip(users, candidates)])


@pytest.mark.parametrize("name", RANKER_NAMES)
def test_score_batch_bit_equal_to_serial(name):
    ranker = make_ranker(name, NUM_USERS, NUM_ITEMS, seed=0)
    ranker.fit(tiny_log())
    users = np.arange(NUM_USERS, dtype=np.int64)
    candidates = candidate_matrix()
    batched = ranker.score_batch(users, candidates)
    assert batched.shape == candidates.shape
    assert np.array_equal(batched, stacked_serial(ranker, users, candidates))


@pytest.mark.parametrize("name", RANKER_NAMES)
def test_score_batch_bit_equal_after_poison_update(name):
    ranker = make_ranker(name, NUM_USERS, NUM_ITEMS, seed=0)
    log = tiny_log()
    ranker.fit(log)
    poison = InteractionLog(NUM_ITEMS)
    poison.add_sequence(NUM_USERS - 2, [1, 2, 3, 2])
    poison.add_sequence(NUM_USERS - 1, [5, 1, 5])
    merged = log.merged_with(poison)
    ranker.poison_update(merged, poison)
    users = np.arange(NUM_USERS, dtype=np.int64)
    candidates = candidate_matrix(seed=2)
    assert np.array_equal(ranker.score_batch(users, candidates),
                          stacked_serial(ranker, users, candidates))


@pytest.mark.parametrize("name", RANKER_NAMES)
def test_score_batch_chunking_is_row_invariant(name, monkeypatch):
    """Forcing 1-row chunks must not change a bit (chunked kernels)."""
    module = type(make_ranker(name, 4, NUM_ITEMS, seed=0)).__module__
    import importlib

    mod = importlib.import_module(module)
    chunk_names = [attr for attr in vars(mod)
                   if attr.startswith("_SCORE_") and attr.endswith(
                       ("_USERS", "_PAIRS", "_BLOCK_USERS"))]
    ranker = make_ranker(name, NUM_USERS, NUM_ITEMS, seed=0)
    ranker.fit(tiny_log())
    users = np.arange(NUM_USERS, dtype=np.int64)
    candidates = candidate_matrix()
    full = ranker.score_batch(users, candidates)
    for attr in chunk_names:
        monkeypatch.setattr(mod, attr, 1)
    assert np.array_equal(ranker.score_batch(users, candidates), full)
