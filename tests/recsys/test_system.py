"""RecommenderSystem / BlackBoxEnvironment semantics."""

import numpy as np
import pytest

from repro.recsys import (BlackBoxEnvironment, RandomCandidateGenerator,
                          RecommenderSystem, make_ranker, RANKER_NAMES)


class TestCandidateGenerator:
    def test_shape_and_contents(self):
        gen = RandomCandidateGenerator(100, np.arange(100, 108), seed=0)
        cands = gen.generate(5)
        assert cands.shape == (5, 100)
        for row in cands:
            assert set(np.arange(100, 108)) <= set(row)
            assert len(set(row.tolist())) == 100  # no duplicates

    def test_candidate_count_clamped_to_catalog(self):
        gen = RandomCandidateGenerator(50, np.arange(50, 58),
                                       num_original_candidates=92, seed=0)
        assert gen.candidate_size == 58

    def test_rejects_empty_catalog(self):
        with pytest.raises(ValueError):
            RandomCandidateGenerator(0, np.arange(3))


class TestRecommenderSystem:
    def test_target_items_appended(self, itempop_system):
        system = itempop_system
        assert system.num_items == system.num_original_items + 8
        np.testing.assert_array_equal(
            system.target_items,
            np.arange(system.num_original_items, system.num_items))

    def test_clean_recnum_is_stable(self, itempop_system):
        itempop_system.reset()
        assert itempop_system.recnum() == itempop_system.recnum()

    def test_attack_resets_before_injecting(self, itempop_system):
        system = itempop_system
        target = int(system.target_items[0])
        flood = [[target] * 20 for _ in range(6)]
        first = system.attack(flood)
        second = system.attack(flood)
        assert first == second  # no cross-attack accumulation

    def test_attack_moves_recnum(self, itempop_system):
        system = itempop_system
        target = int(system.target_items[0])
        flood = [[target] * 30 for _ in range(6)]
        system.reset()
        clean = system.recnum()
        assert system.attack(flood) > clean

    def test_too_many_trajectories_rejected(self, itempop_system):
        with pytest.raises(ValueError):
            itempop_system.build_poison_log([[0]] * 99)

    def test_poison_log_uses_attacker_accounts(self, itempop_system):
        system = itempop_system
        poison = system.build_poison_log([[0, 1], [2]])
        assert poison.users == list(system.attacker_users[:2])

    def test_recommend_shape(self, itempop_system):
        itempop_system.reset()
        recs = itempop_system.recommend()
        assert recs.shape == (len(itempop_system.eval_users),
                              itempop_system.top_k)

    def test_eval_user_sample(self, tiny_dataset):
        system = RecommenderSystem(tiny_dataset, "itempop", seed=0,
                                   eval_user_sample=10)
        assert len(system.eval_users) == 10

    def test_ranker_instance_accepted(self, tiny_dataset):
        ranker = make_ranker("itempop",
                             num_users=tiny_dataset.num_users + 20,
                             num_items=tiny_dataset.num_items + 8)
        system = RecommenderSystem(tiny_dataset, ranker, seed=0)
        assert system.ranker is ranker


class TestBlackBoxEnvironment:
    def test_exposes_only_public_knowledge(self, itempop_env):
        env = itempop_env
        assert env.num_original_items > 0
        assert len(env.target_items) == 8
        assert env.item_popularity.shape == (env.num_items,)
        # Target items are new: zero crawled popularity.
        np.testing.assert_allclose(env.item_popularity[env.target_items], 0.0)

    def test_attack_returns_recnum(self, itempop_env):
        env = itempop_env
        target = int(env.target_items[0])
        recnum = env.attack([[target] * 30 for _ in range(6)])
        assert recnum > env.clean_recnum()


class TestRegistry:
    def test_all_names_construct(self):
        for name in RANKER_NAMES:
            ranker = make_ranker(name, num_users=10, num_items=12, seed=0)
            assert ranker.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_ranker("svdpp", 10, 10)

    def test_eight_rankers(self):
        assert len(RANKER_NAMES) == 8
