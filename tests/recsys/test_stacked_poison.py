"""Stacked poison injections: two injects before any revert.

``RecommenderSystem.inject`` supports stacking — calling it twice
without an intervening ``reset()``.  Once stacked, there is no single
"active poison" whose incremental revert could undo both updates, so
``reset()`` must fall back to the full snapshot restore and still land
bit-exactly on the clean state.  These tests pin that behavior for the
two rankers that advertise ``supports_incremental_revert`` (ItemPop,
CoVisitation), where an incorrect incremental shortcut would silently
corrupt state instead of raising.
"""

import numpy as np
import pytest

from repro.recsys import RecommenderSystem
from repro.recsys.snapshots import freeze, states_equal


RANKERS = ["itempop", "covisitation"]


def _make_system(tiny_dataset, ranker_name):
    return RecommenderSystem(tiny_dataset, ranker_name, seed=0,
                             num_attackers=6)


def _flood(system, length, count):
    target = int(system.target_items[0])
    return [[target] * length for _ in range(count)]


@pytest.mark.parametrize("ranker_name", RANKERS)
def test_stacked_injects_clear_active_poison(tiny_dataset, ranker_name):
    system = _make_system(tiny_dataset, ranker_name)
    system.inject(_flood(system, 5, 3))
    assert system._active_poison is not None  # single inject: revertible
    system.inject(_flood(system, 7, 2))
    # Two stacked injects: no single poison log can revert both updates.
    assert system._active_poison is None
    assert system._poisoned


@pytest.mark.parametrize("ranker_name", RANKERS)
def test_stacked_reset_is_bit_equal_to_clean_snapshot(tiny_dataset,
                                                      ranker_name):
    system = _make_system(tiny_dataset, ranker_name)
    # freeze() deep-copies: ``_state()`` returns live buffers that the
    # injections below mutate in place.
    clean = freeze(system.ranker._state())
    system.inject(_flood(system, 5, 3))
    system.inject(_flood(system, 7, 2))
    assert not states_equal(system.ranker._state(), clean)
    system.reset()  # must take the full-restore path, not incremental
    assert states_equal(system.ranker._state(), clean)
    assert not system._poisoned


@pytest.mark.parametrize("ranker_name", RANKERS)
def test_stacked_reset_matches_fresh_refit(tiny_dataset, ranker_name):
    system = _make_system(tiny_dataset, ranker_name)
    system.inject(_flood(system, 5, 3))
    system.inject(_flood(system, 7, 2))
    system.reset()
    fresh = _make_system(tiny_dataset, ranker_name)
    assert states_equal(system.ranker._state(), fresh.ranker._state())
    np.testing.assert_array_equal(system.recommend(), fresh.recommend())


@pytest.mark.parametrize("ranker_name", RANKERS)
def test_attack_after_stacked_injects_equals_fresh_attack(tiny_dataset,
                                                          ranker_name):
    system = _make_system(tiny_dataset, ranker_name)
    system.inject(_flood(system, 5, 3))
    system.inject(_flood(system, 7, 2))
    probe = _flood(system, 9, 4)
    stacked_then_attack = system.attack(probe)
    fresh = _make_system(tiny_dataset, ranker_name)
    assert stacked_then_attack == fresh.attack(probe)
